//! Hard-crash survival integration tests: durable mid-job checkpoints
//! restore digest-identically on every machine model (including
//! fuzzer-generated ADL machines), process isolation preserves the
//! canonical report, partial progress reaches the journal, and supervised
//! panics never leak onto stderr.

use osm_fuzz::{generate, GenConfig};
use proptest::prelude::*;
use simfarm::{
    journal, parse_manifest, run_farm, run_job, run_job_checkpointed, CheckpointCtl, FarmOptions,
    FarmReport, JournalWriter, ModelKind, ProcessIsolation, SimJob, WorkloadSpec,
};
use std::path::PathBuf;

fn vliw_ilp(iters: i32, body: usize, max_cycles: u64) -> SimJob {
    SimJob::new(ModelKind::Vliw, WorkloadSpec::Ilp { iters, body }, max_cycles)
}

fn specint(model: ModelKind, max_cycles: u64) -> SimJob {
    SimJob::new(model, WorkloadSpec::Named("specint".into()), max_cycles)
}

/// A fresh scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "simfarm_crash_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs `job` three ways — no checkpointing, checkpointing from scratch,
/// and restoring the checkpoint the second run left behind — and asserts
/// all three land on the same digest and cycle count.
fn assert_checkpoint_roundtrip(mut job: SimJob, checkpoint_every: u64) {
    let scratch = Scratch::new("roundtrip");
    job.checkpoint_every = checkpoint_every;

    let baseline = {
        let mut plain = job.clone();
        plain.checkpoint_every = 0;
        run_job(&plain)
    };
    assert!(
        baseline.outcome.is_healthy(),
        "baseline for {} unhealthy: {:?}",
        job.name,
        baseline.outcome
    );

    // First checkpointed run: same digest, leaves a sealed checkpoint.
    let mut ctl = CheckpointCtl::new(&job, 0, &scratch.0).expect("checkpointing enabled");
    let first = run_job_checkpointed(&job, Some(&mut ctl));
    assert_eq!(first.digest, baseline.digest, "{}: checkpointing changed the digest", job.name);
    assert_eq!(first.cycles, baseline.cycles, "{}", job.name);
    assert!(first.restored_from.is_none(), "{}: nothing to restore from yet", job.name);
    assert!(
        scratch.0.join("job-0.ckpt").exists(),
        "{}: no checkpoint sealed (ran {} cycles, every {})",
        job.name,
        first.cycles,
        checkpoint_every
    );

    // Second run restores mid-job and continues to the same digest.
    let mut ctl = CheckpointCtl::new(&job, 0, &scratch.0).expect("checkpointing enabled");
    let second = run_job_checkpointed(&job, Some(&mut ctl));
    let restored = second
        .restored_from
        .unwrap_or_else(|| panic!("{}: second run did not restore", job.name));
    assert!(restored > 0 && restored <= first.cycles, "{}: restore point {restored}", job.name);
    assert_eq!(second.digest, baseline.digest, "{}: restored run diverged", job.name);
    assert_eq!(second.cycles, baseline.cycles, "{}", job.name);
    assert_eq!(second.outcome, baseline.outcome, "{}", job.name);
}

#[test]
fn checkpoint_restore_is_digest_identical_on_every_model() {
    let mut sa = specint(ModelKind::Sa1100, 200_000);
    sa.name = "ckpt/sa1100".into();
    assert_checkpoint_roundtrip(sa, 500);

    let mut ppc = specint(ModelKind::Ppc750, 200_000);
    ppc.name = "ckpt/ppc750".into();
    assert_checkpoint_roundtrip(ppc, 500);

    let mut iss = SimJob::minirisc_random(1, 64, 200_000);
    iss.name = "ckpt/minirisc".into();
    assert_checkpoint_roundtrip(iss, 500);

    let mut vliw = vliw_ilp(2_000, 8, 1_000_000);
    vliw.name = "ckpt/vliw".into();
    assert_checkpoint_roundtrip(vliw, 1_000);
}

#[test]
fn checkpoint_restore_is_digest_identical_on_synthesized_adl_machines() {
    for seed in [0x00u64, 0x5eed, 0xfeed_beef, 0x0de5_cafe] {
        let case = generate(seed, &GenConfig::default());
        let mut job = SimJob::adl(case.name.clone(), case.source, case.osms, case.max_cycles);
        job.faults = case.faults;
        let every = (case.max_cycles / 4).max(1);
        assert_checkpoint_roundtrip(job, every);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated machine, any checkpoint cadence that lands at least
    /// one save strictly inside the run (a cadence equal to the whole
    /// budget never seals — the final state needs no checkpoint): restore
    /// → continue must reproduce the uninterrupted digest.
    #[test]
    fn prop_checkpoint_roundtrip_over_generated_machines(
        seed in any::<u64>(),
        every_frac in 2u64..8,
    ) {
        let case = generate(seed, &GenConfig::default());
        let mut job = SimJob::adl(case.name.clone(), case.source, case.osms, case.max_cycles);
        job.faults = case.faults;
        let every = (case.max_cycles / every_frac).max(1);
        assert_checkpoint_roundtrip(job, every);
    }
}

#[test]
fn farm_journals_partial_progress_from_checkpointing_jobs() {
    let scratch = Scratch::new("partials");
    let mut vliw = vliw_ilp(2_000, 8, 1_000_000);
    vliw.name = "partial/vliw".into();
    vliw.checkpoint_every = 1_000;
    let iss = SimJob::minirisc_random(1, 64, 200_000);
    let jobs = vec![vliw, iss];

    let journal_path = scratch.0.join("sweep.journal");
    let writer = JournalWriter::create(&journal_path, &jobs).expect("create journal");
    let run = run_farm(
        &jobs,
        2,
        FarmOptions {
            journal: Some(writer),
            checkpoint_dir: Some(scratch.0.clone()),
            ..FarmOptions::default()
        },
    )
    .expect("farm run");
    assert!(run.is_complete());

    let bytes = std::fs::read(&journal_path).expect("read journal");
    let needle = br#""record":"partial""#;
    assert!(
        bytes.windows(needle.len()).any(|w| w == needle),
        "journal holds no partial-progress records"
    );
    // Completed results supersede every partial on replay.
    let (writer, replay) = JournalWriter::resume_full(&journal_path, &jobs).expect("resume");
    drop(writer);
    assert_eq!(replay.completed.len(), jobs.len());
    assert!(replay.partials.is_empty(), "partials must be superseded: {:?}", replay.partials);
}

#[test]
fn process_isolation_preserves_the_canonical_report() {
    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/chaos.example.json");
    let text = std::fs::read_to_string(manifest_path).expect("read chaos manifest");
    let jobs = parse_manifest(&text).expect("parse chaos manifest").jobs;

    let baseline = run_farm(&jobs, 2, FarmOptions::default()).expect("in-process run");
    let baseline = FarmReport::consolidate_sweep(&baseline, 2, 0.0);

    let iso = ProcessIsolation {
        exe: PathBuf::from(env!("CARGO_BIN_EXE_simfarm")),
        manifest: PathBuf::from(manifest_path),
        memory_limit_mb: None,
        cpu_limit_secs: None,
    };
    let isolated = run_farm(
        &jobs,
        2,
        FarmOptions {
            isolation: Some(iso),
            ..FarmOptions::default()
        },
    )
    .expect("isolated run");
    let isolated = FarmReport::consolidate_sweep(&isolated, 2, 0.0);

    assert_eq!(isolated.killed, 0, "no child should die in a clean sweep");
    assert_eq!(
        isolated.canonical_text(),
        baseline.canonical_text(),
        "canonical text must not depend on the isolation mode"
    );
    assert_eq!(isolated.canonical_json(), baseline.canonical_json());
}

#[test]
fn supervised_panics_stay_off_stderr() {
    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/chaos.example.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simfarm"))
        .arg(manifest_path)
        .env("RUST_BACKTRACE", "1")
        .output()
        .expect("run simfarm CLI");
    // The chaos manifest quarantines its poison jobs: exit code 1.
    assert_eq!(out.status.code(), Some(1), "expected the unhealthy-jobs exit code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked at"),
        "a supervised panic leaked onto stderr:\n{stderr}"
    );
    // The panic is still fully reported — typed, on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("poison/panicker"), "summary lost the poison job:\n{stdout}");
    assert!(stdout.contains("quarantine"), "summary lost the quarantine section:\n{stdout}");
}

#[test]
fn journal_partial_frames_survive_torn_tails() {
    let scratch = Scratch::new("torn");
    let mut vliw = vliw_ilp(2_000, 8, 1_000_000);
    vliw.name = "torn/vliw".into();
    vliw.checkpoint_every = 1_000;
    let jobs = vec![vliw];

    let journal_path = scratch.0.join("sweep.journal");
    let writer = JournalWriter::create(&journal_path, &jobs).expect("create journal");
    let run = run_farm(
        &jobs,
        1,
        FarmOptions {
            journal: Some(writer),
            checkpoint_dir: Some(scratch.0.clone()),
            ..FarmOptions::default()
        },
    )
    .expect("farm run");
    assert!(run.is_complete());

    // Truncate inside the trailing (result) record: the replay keeps the
    // partial records and reports the latest checkpointed cycle.
    let bytes = std::fs::read(&journal_path).expect("read journal");
    let torn = &bytes[..bytes.len() - 3];
    let (completed, _) = journal::parse_bytes(torn, &jobs).expect("torn journal parses");
    assert!(completed.is_empty(), "the only result record was torn off");
}
