//! Integration tests for the supervised farm: crash isolation through the
//! public API, durable kill-and-resume byte-identity, and adversarial
//! journal corruption (truncation at every byte boundary, single bit
//! flips).

use proptest::prelude::*;
use simfarm::journal::{self, header_bytes, jobs_digest, record_bytes};
use simfarm::{
    run_farm, run_serial, FarmOptions, FarmReport, JobOutcome, JournalError, JournalWriter,
    ModelKind, SimJob, WorkloadSpec,
};
use std::path::PathBuf;

/// A small mixed sweep: three healthy ISS jobs, one panicker, one job with
/// a bad workload. Cheap enough to re-run at many resume points.
fn mixed_jobs() -> Vec<SimJob> {
    let mut jobs: Vec<SimJob> = (0..3)
        .map(|i| SimJob::minirisc_random(i, 48, 30_000))
        .collect();
    let mut chaos = SimJob::chaos_panic("it/panicker");
    chaos.retries = 0;
    jobs.insert(1, chaos);
    let mut broken = SimJob::new(
        ModelKind::Vliw,
        WorkloadSpec::Named("not-an-ilp-workload".into()),
        10_000,
    );
    broken.name = "it/misconfigured".into();
    broken.retries = 0;
    jobs.push(broken);
    jobs
}

/// The full journal a completed sweep of `jobs` would write, built
/// in-memory and deterministically (serial completion order).
fn full_journal_bytes(jobs: &[SimJob]) -> Vec<u8> {
    let mut bytes = header_bytes(jobs).unwrap();
    for (i, result) in run_serial(jobs).iter().enumerate() {
        bytes.extend_from_slice(&record_bytes(i, result).unwrap());
    }
    bytes
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "simfarm_supervision_{}_{tag}.journal",
        std::process::id()
    ))
}

#[test]
fn poison_jobs_are_contained_and_typed_through_the_public_api() {
    let jobs = mixed_jobs();
    let results = run_serial(&jobs);
    assert_eq!(results.len(), 5);
    assert!(matches!(
        &results[1].outcome,
        JobOutcome::Quarantined { attempts: 1, last }
            if matches!(last.as_ref(), JobOutcome::Panicked { payload, .. } if payload.contains("chaos:panic"))
    ));
    assert!(matches!(
        &results[4].outcome,
        JobOutcome::Quarantined { last, .. }
            if matches!(last.as_ref(), JobOutcome::Failed(_))
    ));
    for idx in [0, 2, 3] {
        assert!(results[idx].is_ok(), "job {idx}: {:?}", results[idx].outcome);
    }
}

#[test]
fn kill_and_resume_is_byte_identical_at_every_record_boundary() {
    // Simulate a sweep killed after exactly N journal records, for every N,
    // by materializing the journal prefix on disk and resuming from it.
    // Every resumed run must produce canonical report renderings
    // byte-identical to the uninterrupted sweep's.
    let jobs = mixed_jobs();
    let uninterrupted = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
    let canon_text = uninterrupted.canonical_text();
    let canon_json = uninterrupted.canonical_json();
    assert!(canon_text.contains("quarantine: 2 job(s)"), "{canon_text}");

    let serial = run_serial(&jobs);
    let path = temp_path("boundary");
    for kept in 0..=jobs.len() {
        let mut bytes = header_bytes(&jobs).unwrap();
        for (i, result) in serial.iter().take(kept).enumerate() {
            bytes.extend_from_slice(&record_bytes(i, result).unwrap());
        }
        // A torn half-record on the end, as a kill mid-append would leave.
        if kept < jobs.len() {
            let next = record_bytes(kept, &serial[kept]).unwrap();
            bytes.extend_from_slice(&next[..next.len() / 2]);
        }
        std::fs::write(&path, &bytes).unwrap();

        let (writer, completed) = JournalWriter::resume(&path, &jobs).unwrap();
        assert_eq!(completed.len(), kept, "restored records after kill at {kept}");
        let run = run_farm(
            &jobs,
            2,
            FarmOptions {
                completed,
                journal: Some(writer),
                ..FarmOptions::default()
            },
        )
        .unwrap();
        assert!(run.is_complete());
        assert_eq!(run.restored, kept);
        let report = FarmReport::consolidate_sweep(&run, 2, 0.0);
        assert_eq!(report.canonical_text(), canon_text, "kill at {kept} records");
        assert_eq!(report.canonical_json(), canon_json, "kill at {kept} records");

        // The journal after resume is complete: replaying it restores every
        // job without running anything.
        let all = journal::read_journal(&path, &jobs).unwrap();
        assert_eq!(all.len(), jobs.len());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncation_at_every_byte_boundary_is_torn_tolerated() {
    // Cheap jobs: the journal is built once; parsing is exercised at every
    // possible truncation point. The invariant: any cut at or past the
    // header yields Ok with exactly the records that are fully contained —
    // never an error, never a phantom record.
    let jobs: Vec<SimJob> = (0..3)
        .map(|i| SimJob::minirisc_random(i, 32, 10_000))
        .collect();
    let serial = run_serial(&jobs);
    let header = header_bytes(&jobs).unwrap();
    let records: Vec<Vec<u8>> = serial
        .iter()
        .enumerate()
        .map(|(i, r)| record_bytes(i, r).unwrap())
        .collect();
    let mut bytes = header.clone();
    for r in &records {
        bytes.extend_from_slice(r);
    }
    // Record boundaries (byte offsets at which k records are complete).
    let mut boundaries = vec![header.len()];
    for r in &records {
        boundaries.push(boundaries.last().unwrap() + r.len());
    }

    for cut in 0..=bytes.len() {
        let slice = &bytes[..cut];
        if cut < header.len() {
            assert!(
                matches!(journal::parse_bytes(slice, &jobs), Err(JournalError::BadHeader { .. })),
                "cut {cut} inside the header must be rejected"
            );
            continue;
        }
        let expected = boundaries.iter().filter(|b| **b <= cut).count() - 1;
        let (completed, valid_len) = journal::parse_bytes(slice, &jobs)
            .unwrap_or_else(|e| panic!("cut at byte {cut} rejected: {e}"));
        assert_eq!(completed.len(), expected, "cut at byte {cut}");
        assert_eq!(valid_len as usize, boundaries[expected], "cut at byte {cut}");
        // Recovered records are bit-exact.
        for (i, result) in &completed {
            assert_eq!(record_bytes(*i, result).unwrap(), records[*i], "record {i} at cut {cut}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // A single bit flip anywhere in the journal must never smuggle a
    // changed record through: parsing either fails loudly, or returns only
    // records that are bit-exact to the originals (a flip in a length
    // prefix or the torn region can shorten the valid prefix — that is the
    // torn-write tolerance — but never alter a record's content).
    #[test]
    fn single_bit_flips_never_corrupt_a_recovered_record(
        byte_index in 0usize..4096,
        bit in 0u8..8,
    ) {
        let jobs: Vec<SimJob> = (0..2)
            .map(|i| SimJob::minirisc_random(i, 32, 10_000))
            .collect();
        let serial = run_serial(&jobs);
        let header_len = header_bytes(&jobs).unwrap().len();
        let records: Vec<Vec<u8>> = serial
            .iter()
            .enumerate()
            .map(|(i, r)| record_bytes(i, r).unwrap())
            .collect();
        let mut bytes = header_bytes(&jobs).unwrap();
        for r in &records {
            bytes.extend_from_slice(r);
        }
        let idx = byte_index % bytes.len();
        bytes[idx] ^= 1 << bit;

        match journal::parse_bytes(&bytes, &jobs) {
            Err(_) => {} // loud rejection is always acceptable
            Ok((completed, _)) => {
                prop_assert!(
                    idx >= header_len,
                    "flip inside the header must not parse (byte {idx})"
                );
                for (i, result) in &completed {
                    prop_assert_eq!(
                        record_bytes(*i, result).unwrap(),
                        records[*i].clone(),
                        "bit flip at byte {} bit {} altered record {}",
                        idx, bit, i
                    );
                }
            }
        }
    }
}

#[test]
fn resume_rejects_a_journal_from_a_different_sweep() {
    let jobs = mixed_jobs();
    let path = temp_path("mismatch");
    std::fs::write(&path, full_journal_bytes(&jobs)).unwrap();

    let mut other = mixed_jobs();
    other[0].seed ^= 0xDEAD;
    match JournalWriter::resume(&path, &other) {
        Err(JournalError::ManifestMismatch { journal, manifest }) => {
            assert_eq!(journal, jobs_digest(&jobs));
            assert_eq!(manifest, jobs_digest(&other));
        }
        other => panic!("expected ManifestMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn worker_count_does_not_change_the_canonical_report() {
    // Neither worker count nor farm observability may move a byte of the
    // canonical renderings: 1/2/8 workers × observer off/on all agree.
    let jobs = mixed_jobs();
    let mut renderings = Vec::new();
    for workers in [1usize, 2, 8] {
        for observed in [false, true] {
            let options = FarmOptions {
                observer: observed.then(simfarm::FarmObserver::new),
                ..FarmOptions::default()
            };
            let run = run_farm(&jobs, workers, options).unwrap();
            assert_eq!(run.schedule.is_some(), observed);
            let report = FarmReport::consolidate_sweep(&run, workers, 0.0);
            renderings.push((report.canonical_text(), report.canonical_json()));
        }
    }
    for pair in &renderings[1..] {
        assert_eq!(pair, &renderings[0]);
    }
}

#[test]
fn observed_schedule_covers_every_executed_job_but_not_restored_ones() {
    // Restore the first two results from a journal-less resume, observe the
    // rest: spans exist exactly for the jobs that ran in this process.
    let jobs = mixed_jobs();
    let oracle = run_serial(&jobs);
    let completed: std::collections::BTreeMap<usize, simfarm::JobResult> =
        oracle.iter().take(2).cloned().enumerate().collect();
    let run = run_farm(
        &jobs,
        2,
        FarmOptions {
            completed,
            observer: Some(simfarm::FarmObserver::new()),
            ..FarmOptions::default()
        },
    )
    .unwrap();
    let schedule = run.schedule.as_ref().unwrap();
    assert_eq!(schedule.jobs_total, jobs.len());
    let spanned: Vec<usize> = schedule.spans.iter().map(|s| s.index).collect();
    assert_eq!(spanned, vec![2, 3, 4], "restored jobs 0/1 have no span");
    for span in &schedule.spans {
        assert!(!span.attempts.is_empty());
        assert!(span.attempts.iter().all(|a| a.end_ns >= a.start_ns));
    }
}

#[test]
fn completed_journal_resume_runs_nothing_and_reports_identically() {
    let jobs = mixed_jobs();
    let path = temp_path("complete");
    std::fs::write(&path, full_journal_bytes(&jobs)).unwrap();

    let (writer, completed) = JournalWriter::resume(&path, &jobs).unwrap();
    assert_eq!(completed.len(), jobs.len());
    let run = run_farm(
        &jobs,
        4,
        FarmOptions {
            completed,
            journal: Some(writer),
            ..FarmOptions::default()
        },
    )
    .unwrap();
    assert_eq!(run.restored, jobs.len());
    let report = FarmReport::consolidate_sweep(&run, 4, 0.0);
    let baseline = FarmReport::consolidate(run_serial(&jobs), 1, 0.0);
    assert_eq!(report.canonical_text(), baseline.canonical_text());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chaos_example_manifest_stays_valid() {
    let manifest = simfarm::parse_manifest(include_str!("../chaos.example.json")).unwrap();
    assert_eq!(manifest.jobs.len(), 7);
    assert!(manifest
        .jobs
        .iter()
        .any(|j| matches!(j.workload, WorkloadSpec::ChaosPanic)));
    let staller = manifest
        .jobs
        .iter()
        .find(|j| j.name == "poison/staller")
        .expect("staller job present");
    assert_eq!(staller.stall_budget, Some(500));
    assert!(staller.faults.is_some());
    // The poison jobs' identity is part of the journal digest, so resuming
    // a chaos sweep against an edited manifest is rejected.
    let mut edited = manifest.jobs.clone();
    edited[3].stall_budget = Some(501);
    assert_ne!(jobs_digest(&manifest.jobs), jobs_digest(&edited));
}
