//! Ablations AB1/AB2: director restart policy and ranking policy.
//!
//! The paper notes (§5) that with age ranking and no senior-on-junior
//! resource dependences, the Fig. 3 outer-loop restart can be skipped.
//! This bench measures what the restart costs when enabled anyway, and what
//! a ranking policy change costs.

use criterion::{criterion_group, criterion_main, Criterion};
use osm_core::{FnRanker, RestartPolicy};
use sa1100::{SaConfig, SaOsmSim};
use std::hint::black_box;
use workloads::mediabench_scaled;

fn director_ablation(c: &mut Criterion) {
    let w = mediabench_scaled(1).remove(2); // g721/dec: branchy
    let program = w.program();

    let mut group = c.benchmark_group("director_ablation");
    group.sample_size(10);

    group.bench_function("no_restart_age_rank", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().set_restart_policy(RestartPolicy::NoRestart);
            black_box(sim.run_to_halt(u64::MAX).expect("runs").cycles)
        })
    });
    group.bench_function("restart_age_rank", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().set_restart_policy(RestartPolicy::Restart);
            black_box(sim.run_to_halt(u64::MAX).expect("runs").cycles)
        })
    });
    group.bench_function("no_restart_fn_rank", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut()
                .set_ranker(FnRanker(Box::new(|view, _| view.age)));
            black_box(sim.run_to_halt(u64::MAX).expect("runs").cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, director_ablation);
criterion_main!(benches);
