//! Criterion benchmark behind the §5 speed claims: time to simulate a fixed
//! workload on each of the four simulators.

use criterion::{criterion_group, criterion_main, Criterion};
use ppc750::{PpcConfig, PpcOsmSim, PpcPortSim};
use sa1100::{RefSim, SaConfig, SaOsmSim};
use std::hint::black_box;
use workloads::mediabench_scaled;

fn sim_speed(c: &mut Criterion) {
    // gsm/dec at scale 2: a few hundred thousand cycles per run.
    let w = mediabench_scaled(2).remove(0);
    let program = w.program();

    let mut group = c.benchmark_group("sim_speed");
    group.sample_size(10);

    group.bench_function("sa1100_osm", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            let r = sim.run_to_halt(u64::MAX).expect("runs");
            black_box(r.cycles)
        })
    });
    group.bench_function("sa1100_reference", |b| {
        b.iter(|| {
            let mut sim = RefSim::new(SaConfig::paper(), &program);
            let r = sim.run_to_halt(u64::MAX);
            black_box(r.cycles)
        })
    });
    group.bench_function("ppc750_osm", |b| {
        b.iter(|| {
            let mut sim = PpcOsmSim::new(PpcConfig::paper(), &program);
            let r = sim.run_to_halt(u64::MAX).expect("runs");
            black_box(r.cycles)
        })
    });
    group.bench_function("ppc750_port", |b| {
        b.iter(|| {
            let mut sim = PpcPortSim::new(PpcConfig::paper(), &program);
            let r = sim.run_to_halt(u64::MAX);
            black_box(r.cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, sim_speed);
criterion_main!(benches);
