//! Criterion benchmark for the observability layer's cost model.
//!
//! The acceptance bar for the observer work is that the *disabled* path —
//! no observers registered, no stall tracker — costs < 2% versus the seed
//! simulator, because the director's hot loop only pays an
//! `observers.is_empty()` check per primitive. The enabled rows quantify
//! what full instrumentation costs when you do opt in.
//!
//! Also carries the `Stats::incr` key micro-benchmark: interned
//! `&'static str` keys must not allocate on the hot path, unlike the
//! owned-string `incr_dyn` fallback.

use criterion::{criterion_group, criterion_main, Criterion};
use osm_core::Stats;
use sa1100::{SaConfig, SaOsmSim};
use std::hint::black_box;
use workloads::mediabench_scaled;

fn observer_overhead(c: &mut Criterion) {
    // gsm/dec at scale 2: a few hundred thousand cycles per run.
    let w = mediabench_scaled(2).remove(0);
    let program = w.program();

    let mut group = c.benchmark_group("observer_overhead");
    group.sample_size(10);

    // The baseline everyone compares against: no observers, no tracker.
    group.bench_function("sa1100_osm_observers_off", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            let r = sim.run_to_halt(u64::MAX).expect("runs");
            black_box(r.cycles)
        })
    });
    // Stall attribution alone: per-failed-edge bookkeeping, no event storage.
    group.bench_function("sa1100_osm_stall_attribution", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().enable_stall_attribution();
            let r = sim.run_to_halt(u64::MAX).expect("runs");
            black_box(r.cycles)
        })
    });
    // Metrics collector: histogram accumulation per event, no storage.
    group.bench_function("sa1100_osm_metrics", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().enable_metrics();
            let r = sim.run_to_halt(u64::MAX).expect("runs");
            black_box(r.cycles)
        })
    });
    // The whole stack: ring event log + metrics + stall attribution. The
    // ring bounds memory so the bench measures event dispatch, not allocator
    // growth on a 100M-event vector.
    group.bench_function("sa1100_osm_full_ring64k", |b| {
        b.iter(|| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().enable_event_log_ring(65_536);
            sim.machine_mut().enable_metrics();
            sim.machine_mut().enable_stall_attribution();
            let r = sim.run_to_halt(u64::MAX).expect("runs");
            black_box(r.cycles)
        })
    });
    group.finish();
}

fn stats_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats_keys");
    group.sample_size(10);

    // Interned path: after the first insert every call is a BTreeMap lookup
    // keyed by the borrowed `&'static str` — zero allocations.
    group.bench_function("incr_static", |b| {
        let mut stats = Stats::default();
        b.iter(|| {
            for _ in 0..1_000 {
                stats.incr(black_box("model.icache_miss"), 1);
            }
            black_box(stats.named().count())
        })
    });
    // Dynamic path: same lookup, but a miss pays a `to_owned`. Steady-state
    // cost should match incr_static since the key already exists.
    group.bench_function("incr_dyn_hit", |b| {
        let mut stats = Stats::default();
        stats.incr_dyn("model.icache_miss", 0);
        b.iter(|| {
            for _ in 0..1_000 {
                stats.incr_dyn(black_box("model.icache_miss"), 1);
            }
            black_box(stats.named().count())
        })
    });
    // Worst case before the Cow keys: an owned String allocated per call.
    group.bench_function("incr_dyn_fresh_string", |b| {
        b.iter(|| {
            let mut stats = Stats::default();
            for i in 0..1_000u32 {
                stats.incr_dyn(black_box(&format!("counter.{}", i % 4)), 1);
            }
            black_box(stats.named().count())
        })
    });
    group.finish();
}

criterion_group!(benches, observer_overhead, stats_keys);
criterion_main!(benches);
