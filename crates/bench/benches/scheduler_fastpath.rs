//! Criterion benchmark for the sensitivity-driven scheduler fast path.
//!
//! Two regimes bracket the design space:
//!
//! * **sparse** — many OSMs blocked on a rarely-changing manager. The seed
//!   scheduler re-evaluates every blocked OSM's out-edges (prepare/abort
//!   probes against the manager) every control step; the fast path skips
//!   them on a dirty-epoch check and also elides the idle-step deadlock
//!   diagnostic scan while nothing changed. Acceptance: >= 1.5x.
//! * **dense** — a real pipeline (SA-1100 on gsm/dec) where almost every
//!   OSM moves almost every cycle, so skip records are invalidated as fast
//!   as they are built. Acceptance: within +/- 2% of the seed scheduler
//!   (the sensitivity bookkeeping must be free when it cannot help).
//!
//! The committed baseline lives in `BENCH_3.json`; `results/
//! scheduler_fastpath.txt` records the methodology. CI re-checks both
//! digest equality and the speedup ratio with
//! `cargo run --release -p bench --bin scheduler_smoke`.

use criterion::{criterion_group, criterion_main, Criterion};
use osm_core::{
    ExclusivePool, IdentExpr, InertBehavior, Machine, SchedulerMode, SpecBuilder,
};
use sa1100::{SaConfig, SaOsmSim};
use std::hint::black_box;
use workloads::mediabench_scaled;

/// Builds the sparse-waiter machine: `n` OSMs all competing for one
/// exclusive unit whose release is gated from outside the machine. Between
/// gate openings every waiter is blocked and every manager is clean, so the
/// fast path can skip the whole population.
fn sparse_machine(n: usize) -> Machine<()> {
    let mut m: Machine<()> = Machine::new(());
    let unit = m.add_manager(ExclusivePool::new("unit", 1));
    let spec = {
        let mut b = SpecBuilder::new("waiter");
        let i = b.state("I");
        let h = b.state("H");
        b.initial(i);
        b.edge(i, h).allocate(unit, IdentExpr::Const(0));
        b.edge(h, i).release(unit, IdentExpr::AnyHeld);
        b.build().unwrap()
    };
    for _ in 0..n {
        m.add_osm(&spec, InertBehavior);
    }
    m
}

/// Drives the sparse machine for `cycles` steps, opening the release gate
/// one cycle in every `period`. Returns a value dependent on the run so the
/// optimizer cannot discard it.
fn run_sparse(mode: SchedulerMode, n: usize, cycles: u64, period: u64) -> u64 {
    let mut m = sparse_machine(n);
    m.set_scheduler_mode(mode);
    let unit = osm_core::ManagerId(0);
    // Start closed: the first holder grabs the unit, then everyone waits.
    m.managers
        .downcast_mut::<ExclusivePool>(unit)
        .block_release(0, true);
    for t in 0..cycles {
        let open = t % period == period - 1;
        if open {
            m.managers
                .downcast_mut::<ExclusivePool>(unit)
                .block_release(0, false);
        }
        m.step().expect("no deadlock");
        if open {
            m.managers
                .downcast_mut::<ExclusivePool>(unit)
                .block_release(0, true);
        }
    }
    m.stats.transitions + m.stats.idle_steps
}

fn scheduler_fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_fastpath");
    group.sample_size(10);

    // Sparse regime: 256 waiters, gate open 1 cycle in 16.
    for mode in [SchedulerMode::Fast, SchedulerMode::Seed] {
        let name = format!("sparse_256_waiters_{mode:?}").to_lowercase();
        group.bench_function(&name, |b| {
            b.iter(|| black_box(run_sparse(mode, 256, 10_000, 16)))
        });
    }

    // Dense regime: the SA-1100 pipeline on gsm/dec (scale 2). Every OSM is
    // in flight nearly every cycle, so this measures pure fast-path
    // bookkeeping overhead.
    let w = mediabench_scaled(2).remove(0);
    let program = w.program();
    for mode in [SchedulerMode::Fast, SchedulerMode::Seed] {
        let name = format!("dense_sa1100_gsm_{mode:?}").to_lowercase();
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
                sim.machine_mut().set_scheduler_mode(mode);
                let r = sim.run_to_halt(u64::MAX).expect("runs");
                black_box(r.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, scheduler_fastpath);
criterion_main!(benches);
