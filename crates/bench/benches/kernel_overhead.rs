//! Kernel overhead microbenchmarks: the cost per control step of the OSM
//! director (Fig. 3), of the DE kernel embedding (Fig. 4), and of the
//! port/signal delta-convergence loop the hardware-centric model pays.

use criterion::{criterion_group, criterion_main, Criterion};
use osm_core::{DeKernel, ExclusivePool, IdentExpr, InertBehavior, Machine, SpecBuilder};
use portsim::{Module, PortKernel, Signal, SignalStore};
use std::hint::black_box;

fn ring_machine() -> Machine<()> {
    let mut m: Machine<()> = Machine::new(());
    let a = m.add_manager(ExclusivePool::new("a", 1));
    let b = m.add_manager(ExclusivePool::new("b", 1));
    let mut sb = SpecBuilder::new("ring");
    let i = sb.state("I");
    let s1 = sb.state("A");
    let s2 = sb.state("B");
    sb.initial(i);
    sb.edge(i, s1).allocate(a, IdentExpr::Const(0));
    sb.edge(s1, s2)
        .release(a, IdentExpr::AnyHeld)
        .allocate(b, IdentExpr::Const(0));
    sb.edge(s2, i).release(b, IdentExpr::AnyHeld);
    let spec = sb.build().expect("valid");
    for _ in 0..4 {
        m.add_osm(&spec, InertBehavior);
    }
    m
}

struct Stage {
    input: Signal<u64>,
    output: Signal<u64>,
    latch: u64,
}
impl Module for Stage {
    fn name(&self) -> &str {
        "stage"
    }
    fn eval(&mut self, s: &mut SignalStore) {
        s.write(self.output, self.latch);
    }
    fn tick(&mut self, s: &mut SignalStore) {
        self.latch = s.read(self.input).wrapping_add(1);
    }
}

fn kernel_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_overhead");

    group.bench_function("osm_cycle_driven_1k_steps", |b| {
        b.iter(|| {
            let mut m = ring_machine();
            m.run(1000).expect("runs");
            black_box(m.stats.transitions)
        })
    });
    group.bench_function("osm_de_kernel_1k_steps", |b| {
        b.iter(|| {
            let m = ring_machine();
            let mut k = DeKernel::new(m, 1);
            k.run_cycles(1000).expect("runs");
            black_box(k.machine().stats.transitions)
        })
    });
    group.bench_function("portsim_ring_1k_steps", |b| {
        b.iter(|| {
            let mut k = PortKernel::new();
            let w0 = k.signals.signal("w0", 0u64);
            let w1 = k.signals.signal("w1", 0u64);
            let w2 = k.signals.signal("w2", 0u64);
            k.add_module(Stage { input: w2, output: w0, latch: 0 });
            k.add_module(Stage { input: w0, output: w1, latch: 0 });
            k.add_module(Stage { input: w1, output: w2, latch: 0 });
            k.run(1000);
            black_box(k.stats.delta_cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, kernel_overhead);
criterion_main!(benches);
