//! A minimal JSON parser and schema checker for the trace-smoke harness.
//!
//! The repository vendors no serde, so the smoke binary that validates the
//! observability exporters carries its own strict recursive-descent JSON
//! parser plus a checker for the small JSON-Schema subset used by the
//! checked-in schemas under `schemas/` (`type`, `properties`, `required`,
//! `items`, `enum`, `additionalProperties: false`, `minimum`, `minItems`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; JSON has one number type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects fractional and negative
    /// numbers). Note f64 cannot represent every u64 exactly; 64-bit values
    /// that must survive bit-exactly (e.g. trace digests) should travel as
    /// hex strings instead.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Largest integer `f64` represents exactly (2^53); the cutover point
    /// for [`Json::lossless_u64`].
    pub const MAX_EXACT_U64: u64 = 1 << 53;

    /// Encodes a `u64` counter losslessly: a plain JSON number while exact
    /// in `f64`, a `"0x…"` hex string beyond 2^53 (`v as f64` above that
    /// silently rounds, so a digest-sized counter would round-trip wrong).
    /// [`Json::lossless_as_u64`] reads back either spelling; schemas pin
    /// such fields as `"type": ["integer", "string"]`.
    pub fn lossless_u64(v: u64) -> Json {
        if v <= Json::MAX_EXACT_U64 {
            Json::Num(v as f64)
        } else {
            Json::Str(format!("0x{v:x}"))
        }
    }

    /// Decodes either [`Json::lossless_u64`] spelling: an exact JSON number
    /// or the `"0x…"` hex-string fallback.
    pub fn lossless_as_u64(&self) -> Option<u64> {
        match self {
            Json::Str(s) => u64::from_str_radix(s.strip_prefix("0x")?, 16).ok(),
            other => other.as_u64(),
        }
    }

    /// The JSON type name (for error messages and schema checks).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Compact serializer: `parse(v.to_string())` round-trips every value this
/// module can represent (object keys come out in normalized order).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => write!(f, "{}", *n as i64),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_json_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// Returns a [`ParseError`] with byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.i,
            msg: msg.to_owned(),
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{s}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not needed by our exporters.
                            out.push(char::from_u32(n).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.i - 1;
                    let s = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.i = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            map.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Validates `value` against a schema expressed in the JSON-Schema subset
/// used under `schemas/`. Returns every violation as a `path: problem` line.
pub fn check_schema(value: &Json, schema: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    check(value, schema, "$", &mut problems);
    problems
}

fn check(value: &Json, schema: &Json, path: &str, problems: &mut Vec<String>) {
    if let Some(types) = schema.get("type") {
        let allowed: Vec<&str> = match types {
            Json::Str(s) => vec![s.as_str()],
            Json::Arr(v) => v.iter().filter_map(Json::as_str).collect(),
            _ => vec![],
        };
        // JSON-Schema treats integers as a refinement of number.
        let actual = value.type_name();
        let ok = allowed.iter().any(|&t| {
            t == actual || (t == "integer" && matches!(value, Json::Num(n) if n.fract() == 0.0))
        });
        if !ok {
            problems.push(format!("{path}: expected type {allowed:?}, got {actual}"));
            return;
        }
    }
    if let Some(allowed) = schema.get("enum").and_then(Json::as_arr) {
        if !allowed.contains(value) {
            problems.push(format!("{path}: value not in enum"));
        }
    }
    if let (Json::Obj(map), Some(Json::Obj(props))) = (value, schema.get("properties")) {
        if let Some(required) = schema.get("required").and_then(Json::as_arr) {
            for key in required.iter().filter_map(Json::as_str) {
                if !map.contains_key(key) {
                    problems.push(format!("{path}: missing required member `{key}`"));
                }
            }
        }
        let closed = matches!(schema.get("additionalProperties"), Some(Json::Bool(false)));
        for (key, member) in map {
            match props.get(key) {
                Some(sub) => check(member, sub, &format!("{path}.{key}"), problems),
                None if closed => {
                    problems.push(format!("{path}: unexpected member `{key}`"));
                }
                None => {}
            }
        }
    }
    if let (Json::Num(n), Some(min)) = (value, schema.get("minimum").and_then(Json::as_num)) {
        if *n < min {
            problems.push(format!("{path}: {n} is below minimum {min}"));
        }
    }
    if let Json::Arr(items) = value {
        if let Some(min) = schema.get("minItems").and_then(Json::as_u64) {
            if (items.len() as u64) < min {
                problems.push(format!(
                    "{path}: array has {} item(s), fewer than minItems {min}",
                    items.len()
                ));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item, item_schema, &format!("{path}[{i}]"), problems);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_shapes() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn schema_subset_checks() {
        let schema = parse(
            r#"{"type":"object","required":["n"],"additionalProperties":false,
                "properties":{"n":{"type":"integer"},"s":{"type":"string"}}}"#,
        )
        .unwrap();
        assert!(check_schema(&parse(r#"{"n":3,"s":"ok"}"#).unwrap(), &schema).is_empty());
        let bad = check_schema(&parse(r#"{"n":3.5,"x":1}"#).unwrap(), &schema);
        assert_eq!(bad.len(), 2, "{bad:?}");
    }

    #[test]
    fn minimum_bounds_numbers() {
        let schema = parse(r#"{"type":"number","minimum":0}"#).unwrap();
        assert!(check_schema(&parse("0").unwrap(), &schema).is_empty());
        assert!(check_schema(&parse("1.5").unwrap(), &schema).is_empty());
        let bad = check_schema(&parse("-0.5").unwrap(), &schema);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("below minimum"), "{bad:?}");
    }

    #[test]
    fn min_items_bounds_arrays() {
        let schema = parse(r#"{"type":"array","minItems":2,"items":{"type":"integer"}}"#).unwrap();
        assert!(check_schema(&parse("[1,2]").unwrap(), &schema).is_empty());
        let bad = check_schema(&parse("[1]").unwrap(), &schema);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("minItems"), "{bad:?}");
        // Item checks still run alongside the length check.
        let both = check_schema(&parse(r#"["x"]"#).unwrap(), &schema);
        assert_eq!(both.len(), 2, "{both:?}");
    }
}
