//! Shared helpers for the experiment harnesses (one binary per table or
//! figure of the paper — see `EXPERIMENTS.md` at the repository root).

#![warn(missing_docs)]

pub mod json;

use ppc750::{PpcConfig, PpcOsmSim, PpcPortSim, PpcResult};
use sa1100::{RefSim, SaConfig, SaOsmSim, SimResult};
use std::time::{Duration, Instant};
use workloads::Workload;

/// Cycle budget used by all harnesses (workloads finish well under it).
pub const MAX_CYCLES: u64 = 200_000_000;

/// Runs a workload on the OSM StrongARM model, returning result + wall time.
///
/// # Panics
/// Panics if the model deadlocks or fails to halt (harness-level invariant).
pub fn run_sa_osm(cfg: SaConfig, w: &Workload) -> (SimResult, Duration) {
    let program = w.program();
    let mut sim = SaOsmSim::new(cfg, &program);
    let t0 = Instant::now();
    let r = sim.run_to_halt(MAX_CYCLES).expect("no deadlock");
    let dt = t0.elapsed();
    assert!(
        sim.machine().shared.halted,
        "workload `{}` did not halt on the OSM model",
        w.name
    );
    (r, dt)
}

/// Runs a workload on the hand-sequenced reference simulator.
///
/// # Panics
/// Panics if the reference fails to halt.
pub fn run_sa_ref(cfg: SaConfig, w: &Workload) -> (SimResult, Duration) {
    let program = w.program();
    let mut sim = RefSim::new(cfg, &program);
    let t0 = Instant::now();
    let r = sim.run_to_halt(MAX_CYCLES);
    let dt = t0.elapsed();
    assert!(
        sim.halted(),
        "workload `{}` did not halt on the reference",
        w.name
    );
    (r, dt)
}

/// Runs a workload on the OSM PowerPC-750 model.
///
/// # Panics
/// Panics if the model deadlocks or fails to halt.
pub fn run_ppc_osm(cfg: PpcConfig, w: &Workload) -> (PpcResult, Duration) {
    let program = w.program();
    let mut sim = PpcOsmSim::new(cfg, &program);
    let t0 = Instant::now();
    let r = sim.run_to_halt(MAX_CYCLES).expect("no deadlock");
    let dt = t0.elapsed();
    assert!(
        sim.machine().shared.halted,
        "workload `{}` did not halt on the PPC OSM model",
        w.name
    );
    (r, dt)
}

/// Runs a workload on the port/signal PowerPC-750 baseline.
///
/// # Panics
/// Panics if the model fails to halt.
pub fn run_ppc_port(cfg: PpcConfig, w: &Workload) -> (PpcResult, Duration) {
    let program = w.program();
    let mut sim = PpcPortSim::new(cfg, &program);
    let t0 = Instant::now();
    let r = sim.run_to_halt(MAX_CYCLES);
    let dt = t0.elapsed();
    assert!(
        sim.halted(),
        "workload `{}` did not halt on the PPC port model",
        w.name
    );
    (r, dt)
}

/// Simulation throughput in cycles per second of wall time.
pub fn cycles_per_sec(cycles: u64, wall: Duration) -> f64 {
    if wall.as_secs_f64() == 0.0 {
        0.0
    } else {
        cycles as f64 / wall.as_secs_f64()
    }
}

/// Signed percentage difference of `b` relative to `a`.
pub fn pct_diff(a: u64, b: u64) -> f64 {
    if a == 0 {
        0.0
    } else {
        100.0 * (b as f64 - a as f64) / a as f64
    }
}

/// Prints an aligned text table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (k, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[k]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Counts lines of code in a source string: non-blank, non-comment-only
/// lines, excluding everything from the `#[cfg(test)]` marker on (matching
/// the paper's "does not include comments and blank lines").
pub fn count_loc(source: &str) -> usize {
    let mut in_block_comment = false;
    let mut count = 0;
    for line in source.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)]") {
            break;
        }
        if in_block_comment {
            if t.contains("*/") {
                in_block_comment = false;
            }
            continue;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        if t.starts_with("/*") {
            if !t.contains("*/") {
                in_block_comment = true;
            }
            continue;
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_code_only() {
        let src = "\n// comment\nfn f() {\n    let x = 1; // trailing\n\n}\n/* block\n   comment */\nstruct S;\n#[cfg(test)]\nmod tests { fn never_counted() {} }\n";
        assert_eq!(count_loc(src), 4); // fn f() {, let, }, struct S;
    }

    #[test]
    fn pct_diff_signs() {
        assert_eq!(pct_diff(100, 103), 3.0);
        assert_eq!(pct_diff(100, 97), -3.0);
        assert_eq!(pct_diff(0, 5), 0.0);
    }

    #[test]
    fn cycles_per_sec_zero_wall() {
        assert_eq!(cycles_per_sec(100, Duration::from_secs(0)), 0.0);
        assert!(cycles_per_sec(100, Duration::from_secs(1)) == 100.0);
    }
}
