//! CI smoke check for the sensitivity-driven scheduler fast path.
//!
//! Two gates, checked on fixed workloads:
//!
//! 1. **Cycle exactness** — the fast scheduler and the seed scheduler must
//!    produce byte-identical transition traces (FNV digest over every
//!    transition event) on all four workload families: the synthetic
//!    sparse-waiter machine, the SA-1100 OSM model on a MediaBench kernel,
//!    the PPC-750 OSM model on the same MiniRISC program, and the VLIW
//!    lockstep core.
//! 2. **No performance regression** — measured two ways on the sparse
//!    workload:
//!    * *Deterministic effort gate*: the number of edge evaluations the
//!      fast scheduler performs (`Stats::condition_failures` — exactly the
//!      work the sensitivity skip eliminates) is cycle-deterministic and
//!      host-independent, so it is compared against the committed
//!      `BENCH_3.json` baseline with a tight tolerance (default 2%).
//!    * *Wall-clock floor*: the seed/fast speedup (minimum-of-N wall
//!      clock) must stay above the 1.5x acceptance floor. Wall-clock
//!      ratios on shared CI hosts are ~15% noisy, which is why the 2%
//!      regression gate rides on the deterministic counter instead.
//!
//! Run with: `cargo run --release -p bench --bin scheduler_smoke`
//! Flags:    `-- --bless` rewrites `BENCH_3.json` from this machine.
//! Env:      `SCHEDULER_SMOKE_TOLERANCE` overrides the relative tolerance
//!           on the effort gate (default 0.02, fail on >2% regression).
//!
//! Exits non-zero on digest mismatch, effort regression, or a speedup
//! below the floor.

use bench::json::parse;
use osm_core::{
    ExclusivePool, IdentExpr, InertBehavior, Machine, ManagerId, SchedulerMode, SpecBuilder,
    Trace,
};
use ppc750::{PpcConfig, PpcOsmSim};
use sa1100::{SaConfig, SaOsmSim};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use vliw::{schedule, VliwConfig, VliwIr, VliwSim};
use workloads::mediabench;

const SPARSE_WAITERS: usize = 256;
const SPARSE_CYCLES: u64 = 30_000;
const SPARSE_PERIOD: u64 = 16;
/// Paired timing repetitions; the minimum is the low-noise estimator on a
/// shared CI host.
const TIMING_REPS: usize = 3;
/// Paired repetitions for the dense parity timing.
const DENSE_TIMING_REPS: usize = 25;
/// Absolute acceptance floor for the sparse speedup.
const SPEEDUP_FLOOR: f64 = 1.5;

fn baseline_path() -> PathBuf {
    // crates/bench -> repository root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_3.json")
}

fn sparse_machine() -> Machine<()> {
    let mut m: Machine<()> = Machine::new(());
    let unit = m.add_manager(ExclusivePool::new("unit", 1));
    let spec = {
        let mut b = SpecBuilder::new("waiter");
        let i = b.state("I");
        let h = b.state("H");
        b.initial(i);
        b.edge(i, h).allocate(unit, IdentExpr::Const(0));
        b.edge(h, i).release(unit, IdentExpr::AnyHeld);
        b.build().unwrap()
    };
    for _ in 0..SPARSE_WAITERS {
        m.add_osm(&spec, InertBehavior);
    }
    m
}

/// Runs the sparse-waiter workload; returns (trace digest, wall seconds,
/// edge evaluations performed).
fn run_sparse(mode: SchedulerMode) -> (u64, f64, u64) {
    let mut m = sparse_machine();
    m.set_scheduler_mode(mode);
    m.enable_trace_with(Trace::digest_only());
    let unit = ManagerId(0);
    m.managers
        .downcast_mut::<ExclusivePool>(unit)
        .block_release(0, true);
    let start = Instant::now();
    for t in 0..SPARSE_CYCLES {
        let open = t % SPARSE_PERIOD == SPARSE_PERIOD - 1;
        if open {
            m.managers
                .downcast_mut::<ExclusivePool>(unit)
                .block_release(0, false);
        }
        m.step().expect("no deadlock");
        if open {
            m.managers
                .downcast_mut::<ExclusivePool>(unit)
                .block_release(0, true);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let evals = m.stats.condition_failures;
    (m.take_trace().expect("trace on").digest(), secs, evals)
}

fn vliw_program() -> vliw::VliwProgram {
    use minirisc::{AluOp, BranchCond, Instr, Reg};
    let addi = |rd: u8, rs1: u8, imm: i32| Instr::AluImm {
        op: AluOp::Add,
        rd: Reg(rd),
        rs1: Reg(rs1),
        imm,
    };
    let mut ir = VliwIr::new();
    ir.push(addi(1, 0, 40));
    let top = ir.instrs.len();
    for k in 0..6usize {
        ir.push(addi(2 + (k % 6) as u8, 0, k as i32));
    }
    ir.push(addi(1, 1, -1));
    ir.branch(
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg(1),
            rs2: Reg(0),
            offset: 0,
        },
        top,
    );
    ir.push(addi(10, 0, 0));
    ir.push(Instr::Alu {
        op: AluOp::Add,
        rd: Reg(11),
        rs1: Reg(1),
        rs2: Reg(0),
    });
    ir.push(Instr::Syscall);
    schedule(&ir, vec![])
}

struct DigestCheck {
    name: &'static str,
    fast: u64,
    seed: u64,
}

fn main() -> ExitCode {
    let bless = std::env::args().skip(1).any(|a| a == "--bless");
    let tolerance: f64 = std::env::var("SCHEDULER_SMOKE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);

    // ----- Gate 1: digest equality on the four workload families. -----
    let mut checks: Vec<DigestCheck> = Vec::new();

    let (sparse_fast_digest, _, fast_evals) = run_sparse(SchedulerMode::Fast);
    let (sparse_seed_digest, _, seed_evals) = run_sparse(SchedulerMode::Seed);
    checks.push(DigestCheck {
        name: "sparse_waiters",
        fast: sparse_fast_digest,
        seed: sparse_seed_digest,
    });

    let w = mediabench().remove(0);
    let program = w.program();
    let sa = |mode: SchedulerMode| {
        let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
        sim.machine_mut().set_scheduler_mode(mode);
        sim.machine_mut().enable_trace_with(Trace::digest_only());
        sim.run_to_halt(u64::MAX).expect("runs");
        sim.machine_mut().take_trace().expect("trace on").digest()
    };
    checks.push(DigestCheck {
        name: "sa1100_mediabench",
        fast: sa(SchedulerMode::Fast),
        seed: sa(SchedulerMode::Seed),
    });

    // Untraced dense run, used further down for the parity timing.
    let sa_timed = |mode: SchedulerMode| {
        let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
        sim.machine_mut().set_scheduler_mode(mode);
        let start = Instant::now();
        sim.run_to_halt(u64::MAX).expect("runs");
        start.elapsed().as_secs_f64()
    };

    let ppc = |mode: SchedulerMode| {
        let mut sim = PpcOsmSim::new(PpcConfig::paper(), &program);
        sim.machine_mut().set_scheduler_mode(mode);
        sim.machine_mut().enable_trace_with(Trace::digest_only());
        sim.run_to_halt(u64::MAX).expect("runs");
        sim.machine_mut().take_trace().expect("trace on").digest()
    };
    checks.push(DigestCheck {
        name: "ppc750_minirisc",
        fast: ppc(SchedulerMode::Fast),
        seed: ppc(SchedulerMode::Seed),
    });

    let vprog = vliw_program();
    let vl = |mode: SchedulerMode| {
        let mut sim = VliwSim::new(VliwConfig::default(), &vprog);
        sim.machine_mut().set_scheduler_mode(mode);
        sim.machine_mut().enable_trace_with(Trace::digest_only());
        sim.run_to_halt(1_000_000).expect("runs");
        sim.machine_mut().take_trace().expect("trace on").digest()
    };
    checks.push(DigestCheck {
        name: "vliw_ilp_loop",
        fast: vl(SchedulerMode::Fast),
        seed: vl(SchedulerMode::Seed),
    });

    let mut failed = false;
    for c in &checks {
        let ok = c.fast == c.seed;
        println!(
            "digest {:<20} fast={:016x} seed={:016x}  {}",
            c.name,
            c.fast,
            c.seed,
            if ok { "ok" } else { "MISMATCH" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!("scheduler_smoke: FAIL — fast scheduler is not cycle-exact");
        return ExitCode::FAILURE;
    }

    // ----- Gate 2: no regression vs the committed baseline. -----
    // Timing runs are separate from the digest runs (no trace attached) and
    // alternate modes pairwise; minimum-of-N is the estimator.
    let mut fast_min = f64::INFINITY;
    let mut seed_min = f64::INFINITY;
    for _ in 0..TIMING_REPS {
        let (_, f, _) = run_sparse(SchedulerMode::Fast);
        let (_, s, _) = run_sparse(SchedulerMode::Seed);
        fast_min = fast_min.min(f);
        seed_min = seed_min.min(s);
    }
    let speedup = seed_min / fast_min;
    println!(
        "sparse timing: seed {:.1} ms, fast {:.1} ms, speedup {:.2}x (min of {TIMING_REPS})",
        seed_min * 1e3,
        fast_min * 1e3,
        speedup
    );

    // Dense parity: the fast path cannot help a machine whose OSMs move
    // almost every cycle, so the acceptance bar is "within noise of seed".
    // Informational only — wall-clock noise on shared hosts dwarfs 2%.
    let mut dense_fast_min = f64::INFINITY;
    let mut dense_seed_min = f64::INFINITY;
    let control = std::env::var_os("SCHED_SMOKE_AB_CONTROL").is_some();
    for _ in 0..DENSE_TIMING_REPS {
        let a = if control {
            SchedulerMode::Seed
        } else {
            SchedulerMode::Fast
        };
        dense_fast_min = dense_fast_min.min(sa_timed(a));
        dense_seed_min = dense_seed_min.min(sa_timed(SchedulerMode::Seed));
    }
    let dense_delta = (dense_fast_min / dense_seed_min - 1.0) * 100.0;
    println!(
        "dense timing (sa1100 {}): seed {:.1} ms, fast {:.1} ms, delta {dense_delta:+.1}% (min of {DENSE_TIMING_REPS})",
        w.name,
        dense_seed_min * 1e3,
        dense_fast_min * 1e3,
    );
    println!(
        "sparse effort: fast {fast_evals} edge evaluations, seed {seed_evals} \
         ({:.1}x fewer)",
        seed_evals as f64 / fast_evals.max(1) as f64
    );

    let path = baseline_path();
    if bless {
        let doc = format!(
            "{{\n  \"bench\": \"scheduler_fastpath\",\n  \"workload\": \"sparse_{SPARSE_WAITERS}_waiters_period_{SPARSE_PERIOD}\",\n  \"cycles\": {SPARSE_CYCLES},\n  \"fast_evals\": {fast_evals},\n  \"seed_evals\": {seed_evals},\n  \"seed_ms\": {:.3},\n  \"fast_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"dense_workload\": \"sa1100_{}\",\n  \"dense_seed_ms\": {:.3},\n  \"dense_fast_ms\": {:.3},\n  \"dense_delta_pct\": {dense_delta:.2}\n}}\n",
            seed_min * 1e3,
            fast_min * 1e3,
            speedup,
            w.name,
            dense_seed_min * 1e3,
            dense_fast_min * 1e3,
        );
        std::fs::write(&path, doc).expect("write BENCH_3.json");
        println!("blessed {}", path.display());
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "scheduler_smoke: cannot read {} ({e}); run with --bless first",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let doc = parse(&text).expect("BENCH_3.json is valid JSON");
    let base_fast_evals = doc
        .get("fast_evals")
        .and_then(|v| v.as_num())
        .expect("BENCH_3.json has a numeric `fast_evals`");
    let base_speedup = doc
        .get("speedup")
        .and_then(|v| v.as_num())
        .expect("BENCH_3.json has a numeric `speedup`");

    // Deterministic gate: the evaluation count is exact on a fixed
    // workload, so any increase beyond the tolerance is a genuine fast-path
    // regression (e.g. a skip condition that stopped firing), not noise.
    let eval_bar = base_fast_evals * (1.0 + tolerance);
    println!(
        "effort gate: fast_evals {fast_evals} vs baseline {base_fast_evals:.0} \
         (tolerance {:.0}%, bar {eval_bar:.0})",
        tolerance * 100.0
    );
    if (fast_evals as f64) > eval_bar {
        eprintln!(
            "scheduler_smoke: FAIL — fast scheduler performed {fast_evals} edge \
             evaluations, a >{:.0}% regression vs the committed {base_fast_evals:.0}",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }

    // Wall-clock floor: noisy, so only the acceptance floor is enforced;
    // the baseline speedup is printed for context.
    println!("speedup floor: measured {speedup:.2}x, floor {SPEEDUP_FLOOR}x, baseline {base_speedup:.2}x");
    if speedup < SPEEDUP_FLOOR {
        eprintln!(
            "scheduler_smoke: FAIL — sparse speedup {speedup:.2}x fell below the \
             {SPEEDUP_FLOOR}x acceptance floor (baseline {base_speedup:.2}x)"
        );
        return ExitCode::FAILURE;
    }
    println!("scheduler_smoke: ok");
    ExitCode::SUCCESS
}
