//! **Ablation AB3** — cache-size / miss-latency sweep through the
//! variable-latency idiom.
//!
//! The paper models variable latency by letting a stage's token manager
//! refuse token releases while a miss is outstanding (§4). This sweep shows
//! the idiom end to end: shrinking the D-cache raises the miss count and
//! every extra miss stretches the buffer stage's occupancy, raising CPI.

use bench::{print_table, run_sa_osm};
use sa1100::SaConfig;
use workloads::Workload;

fn memory_walker() -> Workload {
    // Two working sets: a hot 512 B buffer (fits small caches) and a cold
    // 4 KiB array strided at line granularity (needs a large cache), so the
    // miss curve falls in two steps as capacity grows.
    Workload::new(
        "cache-walker",
        "
            li r20, 0
            li r1, 120
        outer:
            la r2, arr
            la r5, hot
            li r3, 64
        inner:
            lw r4, 0(r2)
            andi r6, r3, 15
            slli r6, r6, 5      ; hot offset, 16 lines of 32 B
            add r6, r6, r5
            lw r7, 0(r6)
            add r20, r20, r4
            add r20, r20, r7
            addi r2, r2, 64     ; stride one cold line
            addi r3, r3, -1
            bne r3, r0, inner
            addi r1, r1, -1
            bne r1, r0, outer
            li r10, 0
            andi r11, r20, 8191
            syscall
        hot:
            .space 512
        arr:
            .space 4096
        ",
    )
}

fn main() {
    println!("Cache sweep: D-cache size vs misses and CPI (variable-latency idiom)\n");

    let w = memory_walker();
    let mut rows = Vec::new();
    for sets in [16usize, 32, 64, 128, 256] {
        for miss_penalty in [10u32, 40] {
            let mut cfg = SaConfig::paper();
            cfg.mem.dcache.sets = sets;
            cfg.mem.dcache.ways = 1;
            cfg.mem.dcache.miss_penalty = miss_penalty;
            let (r, _) = run_sa_osm(cfg, &w);
            let capacity = sets * cfg.mem.dcache.line_bytes;
            rows.push(vec![
                format!("{} B", capacity),
                miss_penalty.to_string(),
                r.dcache_misses.to_string(),
                r.cycles.to_string(),
                format!("{:.3}", r.cpi()),
            ]);
        }
    }
    print_table(
        &["dcache", "miss penalty", "misses", "cycles", "CPI"],
        &rows,
    );
    println!("\nexpected shape: misses and CPI fall as capacity grows; CPI scales with penalty while misses persist");
}
