//! **§5.2 accuracy reproduction** — PPC-750 OSM model vs the hardware-
//! centric model.
//!
//! The paper validates its OSM PowerPC-750 model against the SystemC-based
//! model on a MediaBench + SPECint mix and finds "differences in timing
//! within 3% in all cases", attributed to subtle specification-
//! interpretation mismatches between the two independently written models.
//! This harness runs the same comparison between our OSM model and the
//! port/signal baseline.

use bench::{pct_diff, print_table, run_ppc_osm, run_ppc_port};
use ppc750::PpcConfig;
use workloads::{mediabench_scaled, specint_scaled};

fn main() {
    println!("PPC-750 timing agreement: OSM model vs port/signal model");
    println!("(paper: within 3% in all cases)\n");

    let mut workloads = mediabench_scaled(2);
    workloads.push(specint_scaled(2));

    let mut rows = Vec::new();
    let mut max_abs = 0.0f64;
    for w in &workloads {
        let (osm, _) = run_ppc_osm(PpcConfig::paper(), w);
        let (port, _) = run_ppc_port(PpcConfig::paper(), w);
        assert_eq!(
            osm.exit_code, port.exit_code,
            "functional divergence on {}",
            w.name
        );
        assert_eq!(osm.retired, port.retired, "retire divergence on {}", w.name);
        let diff = pct_diff(osm.cycles, port.cycles);
        max_abs = max_abs.max(diff.abs());
        rows.push(vec![
            w.name.clone(),
            osm.cycles.to_string(),
            port.cycles.to_string(),
            format!("{:+.2}%", diff),
            format!("{:.3}", osm.cpi()),
            format!("{}/{}", osm.mispredicts, osm.branches),
        ]);
    }
    print_table(
        &[
            "benchmark",
            "OSM cycles",
            "port cycles",
            "difference",
            "OSM CPI",
            "mispredict",
        ],
        &rows,
    );
    println!("\nmax |difference| = {max_abs:.2}%  (paper bound: 3%)");
    println!("shape check: {}", if max_abs <= 3.0 { "PASS" } else { "FAIL" });
}
