//! **§5.1 diagnostic-kernel reproduction** — the 40 small kernel loops.
//!
//! The paper used 40 small kernels "to diagnose timing mismatches between
//! the model and the real processor". Here they compare the OSM StrongARM
//! model against the independently written reference simulator, kernel by
//! kernel: any nonzero difference names the mis-modeled mechanism directly
//! (each kernel isolates one: a forwarding distance, the multiplier
//! latency, a branch pattern, a cache stride, ...).

use bench::{pct_diff, print_table, run_sa_osm, run_sa_ref};
use sa1100::SaConfig;
use workloads::kernels40;

fn main() {
    println!("40 diagnostic kernels: OSM StrongARM model vs reference simulator\n");

    let mut rows = Vec::new();
    let mut mismatches = 0;
    for w in kernels40() {
        let (osm, _) = run_sa_osm(SaConfig::paper(), &w);
        let (reference, _) = run_sa_ref(SaConfig::paper(), &w);
        assert_eq!(
            osm.exit_code, reference.exit_code,
            "functional divergence on {}",
            w.name
        );
        let diff = pct_diff(reference.cycles, osm.cycles);
        if osm.cycles != reference.cycles {
            mismatches += 1;
        }
        rows.push(vec![
            w.name.clone(),
            reference.cycles.to_string(),
            osm.cycles.to_string(),
            format!("{:+.2}%", diff),
            format!("{:.3}", osm.cpi()),
        ]);
    }
    print_table(
        &["kernel", "ref cycles", "OSM cycles", "difference", "CPI"],
        &rows,
    );
    println!(
        "\n{mismatches}/40 kernels disagree (0 expected: both implement the same timing spec)"
    );
    println!("shape check: {}", if mismatches == 0 { "PASS" } else { "FAIL" });
}
