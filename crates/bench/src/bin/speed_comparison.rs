//! **§5.1/§5.2 speed reproduction** — simulation throughput comparison.
//!
//! Paper claims:
//! * StrongARM OSM model: 650k cycles/s vs SimpleScalar-ARM 550k cycles/s
//!   on the same machine (OSM ≈ 1.18× a hand-sequenced simulator).
//! * PPC-750 OSM model: 250k cycles/s, **4×** the SystemC model.
//!
//! Absolute numbers depend on the host (the paper used a 1.1 GHz P-III);
//! the *shape* to reproduce is: the OSM model is comparable to (same order
//! of magnitude as) the hand-coded simulator, and several times faster than
//! the port/signal hardware-centric model.

use bench::{cycles_per_sec, print_table, run_ppc_osm, run_ppc_port, run_sa_osm, run_sa_ref};
use ppc750::PpcConfig;
use sa1100::SaConfig;
use workloads::{mediabench_scaled, specint_scaled};

fn main() {
    println!("Simulation speed comparison (release builds give the headline numbers)\n");

    // A long, mixed workload: mpeg2-like (memory+mul) at large scale.
    let mut workloads = mediabench_scaled(40);
    workloads.push(specint_scaled(40));

    let mut sa_osm_cycles = 0u64;
    let mut sa_osm_wall = std::time::Duration::ZERO;
    let mut sa_ref_cycles = 0u64;
    let mut sa_ref_wall = std::time::Duration::ZERO;
    let mut ppc_osm_cycles = 0u64;
    let mut ppc_osm_wall = std::time::Duration::ZERO;
    let mut ppc_port_cycles = 0u64;
    let mut ppc_port_wall = std::time::Duration::ZERO;

    for w in &workloads {
        let (r, t) = run_sa_osm(SaConfig::paper(), w);
        sa_osm_cycles += r.cycles;
        sa_osm_wall += t;
        let (r, t) = run_sa_ref(SaConfig::paper(), w);
        sa_ref_cycles += r.cycles;
        sa_ref_wall += t;
        let (r, t) = run_ppc_osm(PpcConfig::paper(), w);
        ppc_osm_cycles += r.cycles;
        ppc_osm_wall += t;
        let (r, t) = run_ppc_port(PpcConfig::paper(), w);
        ppc_port_cycles += r.cycles;
        ppc_port_wall += t;
    }

    let sa_osm = cycles_per_sec(sa_osm_cycles, sa_osm_wall);
    let sa_ref = cycles_per_sec(sa_ref_cycles, sa_ref_wall);
    let ppc_osm = cycles_per_sec(ppc_osm_cycles, ppc_osm_wall);
    let ppc_port = cycles_per_sec(ppc_port_cycles, ppc_port_wall);

    print_table(
        &["simulator", "kcycles/s", "cycles simulated", "wall (s)"],
        &[
            vec![
                "SA-1100 OSM model".into(),
                format!("{:.0}", sa_osm / 1e3),
                sa_osm_cycles.to_string(),
                format!("{:.2}", sa_osm_wall.as_secs_f64()),
            ],
            vec![
                "SA-1100 reference (SimpleScalar-style)".into(),
                format!("{:.0}", sa_ref / 1e3),
                sa_ref_cycles.to_string(),
                format!("{:.2}", sa_ref_wall.as_secs_f64()),
            ],
            vec![
                "PPC-750 OSM model".into(),
                format!("{:.0}", ppc_osm / 1e3),
                ppc_osm_cycles.to_string(),
                format!("{:.2}", ppc_osm_wall.as_secs_f64()),
            ],
            vec![
                "PPC-750 port/signal (SystemC-style)".into(),
                format!("{:.0}", ppc_port / 1e3),
                ppc_port_cycles.to_string(),
                format!("{:.2}", ppc_port_wall.as_secs_f64()),
            ],
        ],
    );

    println!("\nratios:");
    println!(
        "  SA OSM / SA reference       = {:.2}x   (paper: 650k/550k = 1.18x vs SimpleScalar)",
        sa_osm / sa_ref
    );
    println!(
        "  PPC OSM / PPC port model    = {:.2}x   (paper: 4x the SystemC model)",
        ppc_osm / ppc_port
    );
    println!(
        "\nbaseline caveats (see EXPERIMENTS.md): our SA reference is a ~250-line\n\
         bespoke simulator, far leaner than SimpleScalar's generic machinery, so\n\
         the SA ratio is not expected to reach the paper's 1.18x; our port model\n\
         is coarser-grained than the paper's 16k-line SystemC model, so the PPC\n\
         ratio lands below the paper's 4x."
    );
    // Shape claims that do carry over: the OSM models reach practical
    // simulation speeds (at or above the paper's absolute numbers), and the
    // OSM model beats the hardware-centric port/signal model of the same
    // machine.
    let sa_ok = sa_osm >= 650e3;
    let ppc_ok = ppc_osm / ppc_port > 1.3 && ppc_osm >= 250e3;
    println!(
        "\nshape check: SA OSM >= paper's 650 kcyc/s: {}, PPC OSM faster than the\n\
         port model and >= paper's 250 kcyc/s: {}",
        if sa_ok { "PASS" } else { "FAIL" },
        if ppc_ok { "PASS" } else { "FAIL" }
    );
}
