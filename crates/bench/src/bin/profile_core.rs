//! Internal: isolates the osm-core director cost (no ISA, no memory system).
use osm_core::{ExclusivePool, IdentExpr, InertBehavior, Machine, SpecBuilder};

fn main() {
    let mut m: Machine<()> = Machine::new(());
    let stages: Vec<_> = (0..5)
        .map(|k| m.add_manager(ExclusivePool::new(format!("s{k}"), 1)))
        .collect();
    let mut b = SpecBuilder::new("op");
    let states: Vec<_> = (0..6).map(|k| b.state(format!("S{k}"))).collect();
    b.initial(states[0]);
    b.edge(states[0], states[1]).allocate(stages[0], IdentExpr::Const(0));
    for k in 1..5 {
        b.edge(states[k], states[k + 1])
            .release(stages[k - 1], IdentExpr::AnyHeld)
            .allocate(stages[k], IdentExpr::Const(0));
    }
    b.edge(states[5], states[0]).release(stages[4], IdentExpr::AnyHeld);
    let spec = b.build().unwrap();
    for _ in 0..8 {
        m.add_osm(&spec, InertBehavior);
    }
    let n = 2_000_000u64;
    let t0 = std::time::Instant::now();
    m.run(n).unwrap();
    let dt = t0.elapsed();
    println!(
        "{} steps in {:.2}s = {:.0} ns/step ({:.0} kcyc/s), {} transitions",
        n,
        dt.as_secs_f64(),
        dt.as_secs_f64() * 1e9 / n as f64,
        n as f64 / dt.as_secs_f64() / 1e3,
        m.stats.transitions
    );
}
