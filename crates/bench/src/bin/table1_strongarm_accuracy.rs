//! **Table 1 reproduction** — StrongARM model comparison.
//!
//! The paper validates the OSM StrongARM model by running the largest
//! MediaBench applications on an iPAQ-3650 (SA-1110 hardware) and comparing
//! run times against the simulator, reporting differences of 0.5–3.3%
//! (attributed to the `time` utility's resolution, syscall interpretation
//! and undocumented memory-subsystem details).
//!
//! Here the hardware is replaced by the independently written reference
//! simulator *configured as the hardware proxy*: it additionally models a
//! periodic DRAM-refresh stall the micro-architecture models abstract away,
//! standing in for the undocumented timing detail of the real memory
//! subsystem (see `DESIGN.md`). Both run the six MediaBench-like kernels;
//! cycle counts convert to seconds at the SA-1100's 200 MHz.

use bench::{pct_diff, print_table, run_sa_osm, run_sa_ref};
use sa1100::SaConfig;
use workloads::mediabench_scaled;

const CLOCK_HZ: f64 = 200.0e6;

fn main() {
    println!("Table 1: StrongARM model comparison (hardware proxy vs OSM simulator)");
    println!("(paper: gsm/g721/mpeg2 enc+dec on iPAQ vs OSM model; differences 0.5–3.3%)\n");

    let mut hw_cfg = SaConfig {
        refresh_interval: 128, // DRAM refresh only the "hardware" has
        ..SaConfig::paper()
    };
    // The hardware also differs in memory-subsystem detail the model
    // abstracts away (paper: "all details of the memory subsystem were not
    // available"): a slower miss path and bus, so memory-heavy benchmarks
    // deviate a little more than ALU-bound ones.
    hw_cfg.mem.dcache.miss_penalty += 8;
    hw_cfg.mem.icache.miss_penalty += 4;
    hw_cfg.mem.bus_latency += 2;
    // ...and branch-unit detail: one extra refetch cycle on every eighth
    // taken branch.
    hw_cfg.hw_branch_stall_every = 8;
    let model_cfg = SaConfig::paper();

    let mut rows = Vec::new();
    let mut max_abs = 0.0f64;
    for w in mediabench_scaled(4) {
        let (hw, _) = run_sa_ref(hw_cfg, &w);
        let (model, _) = run_sa_osm(model_cfg, &w);
        assert_eq!(
            hw.exit_code, model.exit_code,
            "functional divergence on {}",
            w.name
        );
        let diff = pct_diff(hw.cycles, model.cycles);
        max_abs = max_abs.max(diff.abs());
        rows.push(vec![
            w.name.clone(),
            format!("{:.6}", hw.cycles as f64 / CLOCK_HZ),
            format!("{:.6}", model.cycles as f64 / CLOCK_HZ),
            format!("{:+.2}%", diff),
            format!("{}", hw.cycles),
            format!("{}", model.cycles),
        ]);
    }
    print_table(
        &[
            "benchmark",
            "hardware(sec)",
            "simulator(sec)",
            "difference",
            "hw cycles",
            "sim cycles",
        ],
        &rows,
    );
    println!("\nmax |difference| = {max_abs:.2}%  (paper: max 3.3%)");
    println!("shape check: {}", if max_abs <= 3.5 { "PASS" } else { "FAIL" });
}
