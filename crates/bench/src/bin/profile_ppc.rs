//! Internal: tight loop for profiling the PPC-750 models.
use ppc750::{PpcConfig, PpcOsmSim, PpcPortSim};
use workloads::mediabench_scaled;

fn main() {
    let w = mediabench_scaled(20).remove(0);
    let program = w.program();
    let t0 = std::time::Instant::now();
    let mut sim = PpcOsmSim::new(PpcConfig::paper(), &program);
    let r = sim.run_to_halt(u64::MAX).expect("runs");
    let dt = t0.elapsed();
    println!("osm : {} cycles, {:.0} kcyc/s", r.cycles, r.cycles as f64 / dt.as_secs_f64() / 1e3);
    let t0 = std::time::Instant::now();
    let mut sim = PpcPortSim::new(PpcConfig::paper(), &program);
    let r = sim.run_to_halt(u64::MAX);
    let dt = t0.elapsed();
    println!("port: {} cycles, {:.0} kcyc/s", r.cycles, r.cycles as f64 / dt.as_secs_f64() / 1e3);
}
