//! CI smoke check for the observability exporters: runs an instrumented
//! StrongARM kernel, re-parses the emitted Chrome trace and metrics JSON
//! with the crate's own strict parser, validates both against the
//! checked-in schemas under `schemas/`, and cross-checks the exported
//! numbers against the simulator's `Stats` (the reconciliation invariants
//! the observability layer guarantees).
//!
//! Run with: `cargo run --release -p bench --bin trace_smoke`
//! Optional: `-- --out-dir <dir>` also writes the two JSON files there.
//!
//! Exits non-zero on any schema violation or reconciliation mismatch.

use bench::json::{check_schema, parse, Json};
use osm_core::export;
use sa1100::{SaConfig, SaOsmSim};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use workloads::mediabench;

/// Ring capacity for the event log: bounds the trace JSON so the smoke
/// check parses in well under a second while still exercising the
/// ring/dropped-events path of the exporter.
const RING_EVENTS: usize = 65_536;

fn schema_dir() -> PathBuf {
    // crates/bench -> repository root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas")
}

fn load_schema(name: &str) -> Json {
    let path = schema_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

fn expect_u64(doc: &Json, path: &[&str]) -> u64 {
    let mut v = doc;
    for key in path {
        v = v
            .get(key)
            .unwrap_or_else(|| panic!("missing `{}`", path.join(".")));
    }
    v.as_num()
        .unwrap_or_else(|| panic!("`{}` is not a number", path.join("."))) as u64
}

fn main() -> ExitCode {
    let mut out_dir: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out-dir" => out_dir = Some(it.next().expect("--out-dir takes a path").into()),
            other => panic!("unknown flag {other}"),
        }
    }

    let w = mediabench().remove(0);
    println!("trace_smoke: instrumented {} on the SA-1100 OSM model", w.name);
    let mut sim = SaOsmSim::new(SaConfig::paper(), &w.program());
    sim.machine_mut().enable_event_log_ring(RING_EVENTS);
    sim.machine_mut().enable_metrics();
    sim.machine_mut().enable_stall_attribution();
    sim.run_to_halt(u64::MAX).expect("no deadlock");
    assert!(sim.machine().shared.halted, "kernel did not halt");

    let trace_text = sim.chrome_trace().expect("event log enabled");
    let report = sim.metrics_report().expect("metrics enabled");
    let metrics_text = export::metrics_json(&report);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        std::fs::write(dir.join("trace.json"), &trace_text).expect("write trace.json");
        std::fs::write(dir.join("metrics.json"), &metrics_text).expect("write metrics.json");
        println!("wrote trace.json and metrics.json to {}", dir.display());
    }

    let mut failures = 0usize;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        failures += 1;
    };

    // 1. Both documents must be strictly parseable JSON.
    let trace = match parse(&trace_text) {
        Ok(v) => Some(v),
        Err(e) => {
            fail(format!("chrome trace does not parse: {e}"));
            None
        }
    };
    let metrics = match parse(&metrics_text) {
        Ok(v) => Some(v),
        Err(e) => {
            fail(format!("metrics JSON does not parse: {e}"));
            None
        }
    };

    // 2. Schema validation against the checked-in schemas.
    if let Some(trace) = &trace {
        for p in check_schema(trace, &load_schema("chrome_trace.schema.json")) {
            fail(format!("chrome trace schema: {p}"));
        }
    }
    if let Some(metrics) = &metrics {
        for p in check_schema(metrics, &load_schema("metrics.schema.json")) {
            fail(format!("metrics schema: {p}"));
        }
    }

    // 3. Reconciliation: the exported numbers must agree exactly with the
    //    simulator's own Stats counters.
    let stats = &sim.machine().stats;
    let log = sim.machine().event_log().expect("event log enabled");
    if let Some(metrics) = &metrics {
        let denials = expect_u64(metrics, &["token_denials"]);
        if denials != stats.condition_failures {
            fail(format!(
                "token_denials {} != Stats::condition_failures {}",
                denials, stats.condition_failures
            ));
        }
        let stall_cycles = expect_u64(metrics, &["stalls", "global_stall_cycles"]);
        if stall_cycles != stats.idle_steps {
            fail(format!(
                "stalls.global_stall_cycles {} != Stats::idle_steps {}",
                stall_cycles, stats.idle_steps
            ));
        }
        let cycles = expect_u64(metrics, &["cycles"]);
        if cycles != sim.machine().cycle() {
            fail(format!(
                "metrics cycles {} != machine cycle {}",
                cycles,
                sim.machine().cycle()
            ));
        }
    }
    if let Some(trace) = &trace {
        let recorded = expect_u64(trace, &["otherData", "events_recorded"]);
        let dropped = expect_u64(trace, &["otherData", "events_dropped"]);
        if recorded != log.total() {
            fail(format!(
                "events_recorded {} != EventLog::total {}",
                recorded,
                log.total()
            ));
        }
        if dropped != log.dropped() {
            fail(format!(
                "events_dropped {} != EventLog::dropped {}",
                dropped,
                log.dropped()
            ));
        }
        let events = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        if events.is_empty() {
            fail("trace has no events".to_owned());
        }
        let metadata = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        if metadata == 0 {
            fail("trace has no process/thread metadata events".to_owned());
        }
        println!(
            "chrome trace: {} events ({} metadata), {} recorded, {} dropped by the ring",
            events.len(),
            metadata,
            recorded,
            dropped
        );
    }
    println!(
        "metrics: {} cycles, {} denials, {} idle steps — all reconciled against Stats",
        sim.machine().cycle(),
        stats.condition_failures,
        stats.idle_steps
    );

    if failures == 0 {
        println!("trace_smoke: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("trace_smoke: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
