//! **Table 2 reproduction** — source code line counts as a productivity
//! measure.
//!
//! The paper breaks each OSM-based simulator into four categories (modules
//! with TMI, modules without TMI, decoding + OSM initialization,
//! miscellaneous; SA-1100 total 3,032 / PPC-750 total 5,004) and compares
//! against the hand-written baselines (SimpleScalar-ARM 4,633 lines,
//! SystemC PPC 16,000 lines), noting that ~60% of the OSM models is
//! decoding/initialization that an ADL can synthesize, and that most
//! TMI-carrying hardware modules are reused across targets.
//!
//! This harness counts our own sources with the same exclusions (no
//! comments, no blank lines, no tests) and the same category mapping.

use bench::{count_loc, print_table};
use std::fs;
use std::path::Path;

fn loc(path: &str) -> usize {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let full = root.join(path);
    let src = fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", full.display()));
    count_loc(&src)
}

fn sum(paths: &[&str]) -> usize {
    paths.iter().map(|p| loc(p)).sum()
}

fn main() {
    println!("Table 2: source code line numbers (comments/blanks/tests excluded)\n");

    // Category mapping (see EXPERIMENTS.md):
    //  - "modules with TMI": target-specific token-manager code. The generic
    //    pools live in osm-core and are reused by both targets, mirroring the
    //    paper's cross-target module reuse; they are reported separately.
    //  - "modules without TMI": the memory subsystem (caches/TLBs/bus) plus
    //    PPC predictor/oracle — hardware the operations never transact with.
    //  - "decoding and OSM init.": the model files (spec construction, slot
    //    initialization, behaviors) — what an ADL can synthesize.
    //  - "misc": configs, result plumbing, crate docs.
    let memsys = &[
        "crates/memsys/src/cache.rs",
        "crates/memsys/src/tlb.rs",
        "crates/memsys/src/system.rs",
        "crates/memsys/src/lib.rs",
    ];

    let sa_tmi = sum(&["crates/sa1100/src/forward.rs"]);
    let sa_no_tmi = sum(memsys);
    let sa_decode = sum(&["crates/sa1100/src/osm_model.rs"]);
    let sa_misc = sum(&["crates/sa1100/src/config.rs", "crates/sa1100/src/lib.rs"]);
    let sa_total = sa_tmi + sa_no_tmi + sa_decode + sa_misc;

    let ppc_tmi = sum(&["crates/ppc750/src/rename.rs"]);
    let ppc_no_tmi = sum(memsys)
        + sum(&[
            "crates/ppc750/src/predictor.rs",
            "crates/ppc750/src/oracle.rs",
        ]);
    let ppc_decode = sum(&["crates/ppc750/src/osm_model.rs"]);
    let ppc_misc = sum(&["crates/ppc750/src/config.rs", "crates/ppc750/src/lib.rs"]);
    let ppc_total = ppc_tmi + ppc_no_tmi + ppc_decode + ppc_misc;

    print_table(
        &["parts", "SA-1100", "PPC-750", "(paper SA)", "(paper PPC)"],
        &[
            vec![
                "Modules with TMI".into(),
                sa_tmi.to_string(),
                ppc_tmi.to_string(),
                "316".into(),
                "1021".into(),
            ],
            vec![
                "Modules without TMI".into(),
                sa_no_tmi.to_string(),
                ppc_no_tmi.to_string(),
                "126".into(),
                "744".into(),
            ],
            vec![
                "Decoding and OSM init.".into(),
                sa_decode.to_string(),
                ppc_decode.to_string(),
                "2130".into(),
                "2963".into(),
            ],
            vec![
                "Miscellaneous".into(),
                sa_misc.to_string(),
                ppc_misc.to_string(),
                "460".into(),
                "276".into(),
            ],
            vec![
                "Total".into(),
                sa_total.to_string(),
                ppc_total.to_string(),
                "3032".into(),
                "5004".into(),
            ],
        ],
    );

    // Shared OSM library + reusable TMIs (the paper's reuse observation).
    let shared = sum(&[
        "crates/osm-core/src/pools.rs",
        "crates/osm-core/src/manager.rs",
    ]);
    println!("\nreusable TMI library shared by both targets (osm-core pools): {shared} lines");

    // Baseline comparison (paper: SimpleScalar-ARM 4,633 C lines; SystemC
    // PPC ~16,000 C++ lines, both excluding instruction semantics).
    let sa_baseline = sum(&["crates/sa1100/src/reference.rs"]);
    let ppc_baseline = sum(&["crates/ppc750/src/port_model.rs"]);
    println!("\nbaseline simulators (hand-written, same timing spec):");
    print_table(
        &["baseline", "lines", "vs OSM decode+TMI"],
        &[
            vec![
                "SA-1100 reference (SimpleScalar-style)".into(),
                sa_baseline.to_string(),
                format!("{:.2}x", sa_baseline as f64 / (sa_tmi + sa_decode) as f64),
            ],
            vec![
                "PPC-750 port/signal (SystemC-style)".into(),
                ppc_baseline.to_string(),
                format!("{:.2}x", ppc_baseline as f64 / (ppc_tmi + ppc_decode) as f64),
            ],
        ],
    );

    let decode_share =
        100.0 * (sa_decode + ppc_decode) as f64 / (sa_total + ppc_total) as f64;
    println!(
        "\ndecoding + OSM initialization share: {decode_share:.0}% (paper: ~60%, synthesizable via the ADL — see crates/osm-adl)"
    );
}
