//! Internal: tight loop for profiling the SA OSM model hot path.
use sa1100::{SaConfig, SaOsmSim};
use workloads::mediabench_scaled;

fn main() {
    let w = mediabench_scaled(40).remove(0);
    let program = w.program();
    let t0 = std::time::Instant::now();
    let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
    let r = sim.run_to_halt(u64::MAX).expect("runs");
    let dt = t0.elapsed();
    println!(
        "{} cycles in {:.2}s = {:.0} kcyc/s",
        r.cycles,
        dt.as_secs_f64(),
        r.cycles as f64 / dt.as_secs_f64() / 1e3
    );
}
