//! The OSM-based PowerPC-750 micro-architecture model (paper §5.2, Fig. 2).
//!
//! A dual-issue, out-of-order superscalar: 6-entry fetch queue, six function
//! units (two integer units, FPU, load/store, system-register and branch
//! units) each with a one-entry reservation station, register rename
//! buffers, a 6-entry completion queue with in-order retirement, and branch
//! prediction with speculative fetch.
//!
//! Each operation follows the Fig. 2 state machine: `I → Q` (fetch queue),
//! then either `Q → E` *directly into a unit* when its operands and the unit
//! are available at dispatch, or `Q → R → E` through the unit's reservation
//! station — the multiple-outgoing-edge pattern the paper highlights as
//! inexpressible in L-charts. Completion (`E → C`) broadcasts results;
//! retirement (`C → I`) is in-order and dual-bandwidth. High-priority reset
//! edges from every speculative state squash wrong-path operations after a
//! mispredicted branch resolves.

use crate::config::{PpcConfig, PpcResult};
use crate::oracle::Oracle;
use crate::predictor::Bht;
use crate::rename::{RenameFile, ResultBus};
use memsys::MemSystem;
use minirisc::{decode, encode, Instr, InstrClass, Memory, Program};
use osm_core::{
    export, Behavior, BehaviorSnapshot, ByteReader, ByteWriter, Checkpoint, CountingPool, Edge,
    ExclusivePool, FaultHandle, FaultInjector, FaultPlan, HardwareLayer, IdentExpr, Machine,
    ManagerId, ManagerTable, MetricsReport, ModelError, OsmId, OsmView, ResetManager,
    RestartPolicy, SlotId, SpecBuilder, StallHistogram, StateMachineSpec, TokenIdent,
    TransitionCtx,
};
use std::sync::Arc;

/// Identifier slot: first source register (rename value inquiry).
pub const S_SRC1: SlotId = SlotId(0);
/// Identifier slot: second source register.
pub const S_SRC2: SlotId = SlotId(1);
/// Identifier slot: first awaited producer sequence number (RS path).
pub const S_WAIT1: SlotId = SlotId(2);
/// Identifier slot: second awaited producer sequence number.
pub const S_WAIT2: SlotId = SlotId(3);
/// Identifier slot: GPR rename buffer request (ANY or NONE).
pub const S_GREN: SlotId = SlotId(4);
/// Identifier slot: FPR rename buffer request (ANY or NONE).
pub const S_FREN: SlotId = SlotId(5);

/// The six function units of the PPC 750.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Complex integer unit (also runs mul/div).
    Iu1,
    /// Simple integer unit.
    Iu2,
    /// Floating-point unit.
    Fpu,
    /// Load/store unit.
    Lsu,
    /// System register unit.
    Sru,
    /// Branch processing unit.
    Bpu,
}

/// All units, in a fixed order (indexes into the unit manager arrays).
pub const UNITS: [Unit; 6] = [Unit::Iu1, Unit::Iu2, Unit::Fpu, Unit::Lsu, Unit::Sru, Unit::Bpu];

impl Unit {
    /// Index into per-unit arrays.
    pub fn index(self) -> usize {
        UNITS.iter().position(|&u| u == self).expect("unit listed")
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Iu1 => "iu1",
            Unit::Iu2 => "iu2",
            Unit::Fpu => "fpu",
            Unit::Lsu => "lsu",
            Unit::Sru => "sru",
            Unit::Bpu => "bpu",
        }
    }
}

/// The units an instruction class may execute on, in preference order.
pub fn units_for(class: InstrClass) -> &'static [Unit] {
    match class {
        InstrClass::IntAlu => &[Unit::Iu2, Unit::Iu1],
        InstrClass::IntMul | InstrClass::IntDiv => &[Unit::Iu1],
        InstrClass::Load | InstrClass::Store => &[Unit::Lsu],
        InstrClass::Branch | InstrClass::Jump => &[Unit::Bpu],
        InstrClass::FpAdd | InstrClass::FpMul | InstrClass::FpDiv => &[Unit::Fpu],
        InstrClass::System => &[Unit::Sru],
    }
}

/// What an edge of the spec means (precomputed for fast vetoes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    Fetch,
    ResetQ,
    ResetR,
    ResetE,
    ResetC,
    DispExec(Unit),
    DispRs(Unit),
    Issue(Unit),
    Comp(Unit),
    Retire,
}

/// Handles to the model's token managers ("19 TMI-enabled modules", §5.2 —
/// here 22 counting the bandwidth pools).
#[derive(Debug, Clone, Copy)]
pub struct PpcManagers {
    /// Fetch queue entries.
    pub fq: ManagerId,
    /// Fetch bandwidth (per cycle).
    pub fbw: ManagerId,
    /// Dispatch bandwidth (per cycle).
    pub dbw: ManagerId,
    /// Retire bandwidth (per cycle).
    pub rbw: ManagerId,
    /// Completion queue entries.
    pub cq: ManagerId,
    /// GPR rename buffers.
    pub gren: ManagerId,
    /// FPR rename buffers.
    pub fren: ManagerId,
    /// The rename map.
    pub rename: ManagerId,
    /// The result broadcast bus.
    pub bus: ManagerId,
    /// Function units (indexed by [`Unit::index`]).
    pub units: [ManagerId; 6],
    /// Reservation stations (one entry each).
    pub rs: [ManagerId; 6],
    /// Reset manager.
    pub reset: ManagerId,
}

/// Shared hardware-layer state.
#[derive(Debug, Clone)]
pub struct PpcShared {
    /// The lock-step functional oracle.
    pub oracle: Oracle,
    /// Timing memory subsystem.
    pub memsys: MemSystem,
    /// Branch history table.
    pub bht: Bht,
    /// Current cycle (updated by the hardware clock).
    pub now: u64,
    /// PC the fetch engine will fetch next (follows predictions).
    pub next_fetch_pc: u32,
    /// Fetching down a mispredicted path.
    pub wrong_path: bool,
    /// Fetch disabled (halting instruction fetched).
    pub stop_fetch: bool,
    /// The halting instruction retired.
    pub halted: bool,
    /// Next sequence number to assign at fetch.
    fetch_seq: u64,
    /// Sequence number that must dispatch next (in-order dispatch).
    pub next_dispatch_seq: u64,
    /// Sequence number that must retire next (in-order retirement).
    pub next_retire_seq: u64,
    /// Wrong-path operations currently in flight.
    phantoms: Vec<OsmId>,
    /// I-cache stall: cycles before fetch may continue.
    fetch_stall: u32,
    /// Per-unit completion timers (cycles the unit refuses release).
    unit_timer: [u32; 6],
    /// Retired instructions.
    pub retired: u64,
    /// Squashed wrong-path operations.
    pub squashed: u64,
    /// Prediction events (conditional branches + indirect jumps executed).
    pub branches: u64,
    /// Mispredictions among them.
    pub mispredicts: u64,
    edge_kinds: Vec<EdgeKind>,
    ids: PpcManagers,
    cfg: PpcConfig,
}

impl HardwareLayer for PpcShared {
    fn clock(&mut self, cycle: u64, managers: &mut ManagerTable) {
        self.now = cycle;
        self.fetch_stall = self.fetch_stall.saturating_sub(1);
        for (k, unit) in self.ids.units.iter().enumerate() {
            let pool: &mut ExclusivePool = managers.downcast_mut(*unit);
            pool.block_release(0, self.unit_timer[k] > 0);
            self.unit_timer[k] = self.unit_timer[k].saturating_sub(1);
        }
    }
}

impl PpcShared {
    /// Serializes the mutable shared state for the on-disk checkpoint
    /// format. Static wiring (`edge_kinds`, manager handles, configuration)
    /// is excluded — [`PpcShared::decode_state`] takes it from a
    /// same-construction template.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&self.oracle.export_state());
        w.put_bytes(&self.memsys.export_state());
        w.put_bytes(&self.bht.export_state());
        w.put_u64(self.now);
        w.put_u32(self.next_fetch_pc);
        w.put_bool(self.wrong_path);
        w.put_bool(self.stop_fetch);
        w.put_bool(self.halted);
        w.put_u64(self.fetch_seq);
        w.put_u64(self.next_dispatch_seq);
        w.put_u64(self.next_retire_seq);
        w.put_u32(self.phantoms.len() as u32);
        for osm in &self.phantoms {
            w.put_u32(osm.0);
        }
        w.put_u32(self.fetch_stall);
        for t in self.unit_timer {
            w.put_u32(t);
        }
        w.put_u64(self.retired);
        w.put_u64(self.squashed);
        w.put_u64(self.branches);
        w.put_u64(self.mispredicts);
        w.into_bytes()
    }

    /// Decodes state written by [`PpcShared::encode_state`]. `template`
    /// must come from a same-construction simulator; it supplies the static
    /// wiring and validates shapes (memory geometry, BHT size).
    pub fn decode_state(bytes: &[u8], template: &PpcShared) -> Option<PpcShared> {
        let mut r = ByteReader::new(bytes);
        let mut s = template.clone();
        if !s.oracle.import_state(r.take_bytes()?) {
            return None;
        }
        if !s.memsys.import_state(r.take_bytes()?) {
            return None;
        }
        if !s.bht.import_state(r.take_bytes()?) {
            return None;
        }
        s.now = r.take_u64()?;
        s.next_fetch_pc = r.take_u32()?;
        s.wrong_path = r.take_bool()?;
        s.stop_fetch = r.take_bool()?;
        s.halted = r.take_bool()?;
        s.fetch_seq = r.take_u64()?;
        s.next_dispatch_seq = r.take_u64()?;
        s.next_retire_seq = r.take_u64()?;
        let n = r.take_u32()? as usize;
        let mut phantoms = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            phantoms.push(OsmId(r.take_u32()?));
        }
        s.phantoms = phantoms;
        s.fetch_stall = r.take_u32()?;
        for t in &mut s.unit_timer {
            *t = r.take_u32()?;
        }
        s.retired = r.take_u64()?;
        s.squashed = r.take_u64()?;
        s.branches = r.take_u64()?;
        s.mispredicts = r.take_u64()?;
        r.is_done().then_some(s)
    }
}

/// Builds the Fig. 2 state machine over the given managers.
pub fn build_spec(ids: &PpcManagers) -> Arc<StateMachineSpec> {
    let mut b = SpecBuilder::new("ppc750-op");
    let i = b.state("I");
    let q = b.state("Q");
    let r = b.state("R");
    let e = b.state("E");
    let c = b.state("C");
    b.initial(i);

    // Primitive order within a condition is semantically irrelevant (the
    // conjunction commits atomically) — cheaper/likelier-to-fail primitives
    // are listed first so failing conditions abort early.
    b.edge(i, q)
        .named("fetch")
        .allocate(ids.fbw, IdentExpr::ANY)
        .allocate(ids.fq, IdentExpr::ANY)
        .discard(ids.fbw, IdentExpr::AnyHeld);

    for (src, name) in [(q, "reset_q"), (r, "reset_r"), (e, "reset_e"), (c, "reset_c")] {
        b.edge(src, i)
            .named(name)
            .priority(20)
            .inquire(ids.reset, IdentExpr::Const(0))
            .discard_all();
    }

    // Direct dispatch into a unit (operands ready, unit free, its RS empty).
    // IU2 is declared before IU1 so simple integer ops prefer it.
    for unit in [Unit::Iu2, Unit::Iu1, Unit::Fpu, Unit::Lsu, Unit::Sru, Unit::Bpu] {
        b.edge(q, e)
            .named(format!("dispexec_{}", unit.name()))
            .priority(10)
            .allocate(ids.units[unit.index()], IdentExpr::Const(0))
            .inquire(ids.rs[unit.index()], IdentExpr::Const(0))
            .inquire(ids.rename, IdentExpr::Slot(S_SRC1))
            .inquire(ids.rename, IdentExpr::Slot(S_SRC2))
            .allocate(ids.cq, IdentExpr::ANY)
            .allocate(ids.gren, IdentExpr::Slot(S_GREN))
            .allocate(ids.fren, IdentExpr::Slot(S_FREN))
            .allocate(ids.dbw, IdentExpr::ANY)
            .discard(ids.dbw, IdentExpr::AnyHeld)
            .release(ids.fq, IdentExpr::AnyHeld);
    }

    // Dispatch into the unit's reservation station otherwise (same IU2-
    // before-IU1 preference as the direct path).
    for unit in [Unit::Iu2, Unit::Iu1, Unit::Fpu, Unit::Lsu, Unit::Sru, Unit::Bpu] {
        b.edge(q, r)
            .named(format!("disprs_{}", unit.name()))
            .priority(5)
            .allocate(ids.rs[unit.index()], IdentExpr::Const(0))
            .allocate(ids.cq, IdentExpr::ANY)
            .allocate(ids.gren, IdentExpr::Slot(S_GREN))
            .allocate(ids.fren, IdentExpr::Slot(S_FREN))
            .allocate(ids.dbw, IdentExpr::ANY)
            .discard(ids.dbw, IdentExpr::AnyHeld)
            .release(ids.fq, IdentExpr::AnyHeld);
    }

    // Issue from the reservation station once the awaited producers
    // broadcast and the unit frees.
    for unit in UNITS {
        b.edge(r, e)
            .named(format!("issue_{}", unit.name()))
            .inquire(ids.bus, IdentExpr::Slot(S_WAIT1))
            .inquire(ids.bus, IdentExpr::Slot(S_WAIT2))
            .allocate(ids.units[unit.index()], IdentExpr::Const(0))
            .release(ids.rs[unit.index()], IdentExpr::AnyHeld);
    }

    // Completion: leave the unit (held until the latency timer expires).
    for unit in UNITS {
        b.edge(e, c)
            .named(format!("comp_{}", unit.name()))
            .release(ids.units[unit.index()], IdentExpr::AnyHeld);
    }

    b.edge(c, i)
        .named("retire")
        .allocate(ids.rbw, IdentExpr::ANY)
        .discard(ids.rbw, IdentExpr::AnyHeld)
        .release(ids.cq, IdentExpr::AnyHeld)
        .release(ids.gren, IdentExpr::Slot(S_GREN))
        .release(ids.fren, IdentExpr::Slot(S_FREN));

    b.build().expect("static spec is valid")
}

fn classify_edges(spec: &StateMachineSpec) -> Vec<EdgeKind> {
    spec.edges()
        .map(|e| {
            let name = e.name.as_str();
            let unit_of = |s: &str| UNITS.into_iter().find(|u| u.name() == s).expect("unit");
            match name {
                "fetch" => EdgeKind::Fetch,
                "reset_q" => EdgeKind::ResetQ,
                "reset_r" => EdgeKind::ResetR,
                "reset_e" => EdgeKind::ResetE,
                "reset_c" => EdgeKind::ResetC,
                "retire" => EdgeKind::Retire,
                _ => {
                    if let Some(u) = name.strip_prefix("dispexec_") {
                        EdgeKind::DispExec(unit_of(u))
                    } else if let Some(u) = name.strip_prefix("disprs_") {
                        EdgeKind::DispRs(unit_of(u))
                    } else if let Some(u) = name.strip_prefix("issue_") {
                        EdgeKind::Issue(unit_of(u))
                    } else if let Some(u) = name.strip_prefix("comp_") {
                        EdgeKind::Comp(unit_of(u))
                    } else {
                        unreachable!("unknown edge `{name}`")
                    }
                }
            }
        })
        .collect()
}

/// Per-operation behavior.
#[derive(Debug, Default, Clone)]
struct PpcOp {
    seq: u64,
    pc: u32,
    instr: Instr,
    phantom: bool,
    /// Actual direction (right-path control transfers).
    taken: bool,
    /// Actual next PC (right-path).
    next_pc: u32,
    /// Did fetch predict this control transfer wrong?
    mispredicted: bool,
    /// Counts as a prediction event (conditional branch or indirect jump).
    predicted_event: bool,
    mem_addr: Option<u32>,
    is_halting: bool,
    unit: Option<Unit>,
    /// Earliest cycle dispatch may occur (I-cache fill).
    ready_at: u64,
}

impl PpcOp {
    fn latency(&self, shared: &PpcShared) -> u32 {
        let lat = &shared.cfg.lat;
        match self.instr.class() {
            InstrClass::IntAlu => lat.alu,
            InstrClass::IntMul => lat.mul,
            InstrClass::IntDiv => lat.div,
            InstrClass::FpAdd => lat.fadd,
            InstrClass::FpMul => lat.fmul,
            InstrClass::FpDiv => lat.fdiv,
            InstrClass::Load | InstrClass::Store => lat.lsu,
            InstrClass::System => lat.sru,
            InstrClass::Branch | InstrClass::Jump => lat.bpu,
        }
    }

    /// Starts execution in `unit`: charges the unit's latency (plus D-cache
    /// penalty for right-path memory operations) to the unit release timer.
    fn start_execute(&mut self, unit: Unit, ctx: &mut TransitionCtx<'_, PpcShared>) {
        self.unit = Some(unit);
        let mut extra = self.latency(ctx.shared).saturating_sub(1);
        if let Some(addr) = self.mem_addr {
            extra += ctx.shared.memsys.data_penalty(addr);
        }
        ctx.shared.unit_timer[unit.index()] = extra;
    }

    fn dispatch_bookkeeping(&mut self, ctx: &mut TransitionCtx<'_, PpcShared>) {
        ctx.shared.next_dispatch_seq += 1;
        if let Some(dest) = self.instr.dest() {
            let rename: &mut RenameFile = ctx.managers.downcast_mut(ctx.shared.ids.rename);
            rename.begin_write(dest.flat_index(), ctx.osm, self.seq);
        }
    }

    /// Branch resolution at completion (right-path only).
    fn resolve_control(&mut self, ctx: &mut TransitionCtx<'_, PpcShared>) {
        if self.instr.class() == InstrClass::Branch {
            ctx.shared.bht.train(self.pc, self.taken);
        }
        if self.predicted_event {
            ctx.shared.branches += 1;
        }
        if self.mispredicted {
            ctx.shared.mispredicts += 1;
            // Kill the speculative operations (paper §4 control hazards).
            let reset: &mut ResetManager = ctx.managers.downcast_mut(ctx.shared.ids.reset);
            for &osm in &ctx.shared.phantoms {
                reset.arm(osm);
            }
            ctx.shared.wrong_path = false;
            ctx.shared.next_fetch_pc = self.next_pc;
            ctx.shared.fetch_seq = self.seq + 1;
            ctx.shared.next_dispatch_seq = self.seq + 1;
            let bus: &mut ResultBus = ctx.managers.downcast_mut(ctx.shared.ids.bus);
            bus.squash_above(self.seq);
        }
    }
}

impl Behavior<PpcShared> for PpcOp {
    fn snapshot(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::of(self.clone())
    }

    fn restore(&mut self, snap: &BehaviorSnapshot) -> bool {
        match snap.downcast::<PpcOp>() {
            Some(state) => {
                self.clone_from(state);
                true
            }
            None => false,
        }
    }

    fn encode_snapshot(&self, snap: &BehaviorSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<PpcOp>()?;
        let mut w = ByteWriter::new();
        w.put_u64(state.seq);
        w.put_u32(state.pc);
        w.put_u32(encode(state.instr).ok()?);
        w.put_bool(state.phantom);
        w.put_bool(state.taken);
        w.put_u32(state.next_pc);
        w.put_bool(state.mispredicted);
        w.put_bool(state.predicted_event);
        match state.mem_addr {
            None => w.put_bool(false),
            Some(a) => {
                w.put_bool(true);
                w.put_u32(a);
            }
        }
        w.put_bool(state.is_halting);
        // Unit as a tag: 0 = none, else 1 + index into `UNITS`.
        w.put_u8(state.unit.map_or(0, |u| u.index() as u8 + 1));
        w.put_u64(state.ready_at);
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<BehaviorSnapshot> {
        let mut r = ByteReader::new(bytes);
        let seq = r.take_u64()?;
        let pc = r.take_u32()?;
        let instr = decode(r.take_u32()?).ok()?;
        let phantom = r.take_bool()?;
        let taken = r.take_bool()?;
        let next_pc = r.take_u32()?;
        let mispredicted = r.take_bool()?;
        let predicted_event = r.take_bool()?;
        let mem_addr = if r.take_bool()? {
            Some(r.take_u32()?)
        } else {
            None
        };
        let is_halting = r.take_bool()?;
        let unit = match r.take_u8()? {
            0 => None,
            t => Some(*UNITS.get(t as usize - 1)?),
        };
        let ready_at = r.take_u64()?;
        r.is_done().then(|| {
            BehaviorSnapshot::of(PpcOp {
                seq,
                pc,
                instr,
                phantom,
                taken,
                next_pc,
                mispredicted,
                predicted_event,
                mem_addr,
                is_halting,
                unit,
                ready_at,
            })
        })
    }

    fn edge_enabled(&self, edge: &Edge, _view: &OsmView<'_>, shared: &PpcShared) -> bool {
        match shared.edge_kinds[edge.id.index()] {
            EdgeKind::Fetch => !shared.stop_fetch && shared.fetch_stall == 0,
            EdgeKind::DispExec(u) | EdgeKind::DispRs(u) => {
                self.seq == shared.next_dispatch_seq
                    && shared.now >= self.ready_at
                    && units_for(self.instr.class()).contains(&u)
            }
            EdgeKind::Issue(u) | EdgeKind::Comp(u) => self.unit == Some(u),
            EdgeKind::Retire => !self.phantom && self.seq == shared.next_retire_seq,
            EdgeKind::ResetQ | EdgeKind::ResetR | EdgeKind::ResetE | EdgeKind::ResetC => true,
        }
    }

    fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, PpcShared>) {
        let kind = ctx.shared.edge_kinds[edge.id.index()];
        match kind {
            EdgeKind::Fetch => {
                *self = PpcOp::default();
                self.seq = ctx.shared.fetch_seq;
                ctx.shared.fetch_seq += 1;
                ctx.set_slot(S_WAIT1, TokenIdent::NONE);
                ctx.set_slot(S_WAIT2, TokenIdent::NONE);

                if ctx.shared.wrong_path {
                    // Phantom: decode straight from memory, no oracle.
                    self.phantom = true;
                    self.pc = ctx.shared.next_fetch_pc;
                    ctx.shared.next_fetch_pc = self.pc.wrapping_add(4);
                    let word = ctx.shared.oracle.mem.read_u32(self.pc);
                    self.instr = decode(word).unwrap_or(Instr::NOP);
                    ctx.shared.phantoms.push(ctx.osm);
                } else {
                    let step = ctx.shared.oracle.step();
                    self.pc = step.pc;
                    self.instr = step.instr;
                    self.next_pc = step.next_pc;
                    self.taken = step.taken;
                    self.mem_addr = step.mem_addr;
                    self.is_halting = step.is_halting;
                    if self.is_halting {
                        ctx.shared.stop_fetch = true;
                    }
                    // Predict the next fetch address.
                    let predicted_next = match self.instr {
                        Instr::Branch { offset, .. } => {
                            self.predicted_event = true;
                            if ctx.shared.bht.predict(self.pc) {
                                self.pc.wrapping_add(offset as u32)
                            } else {
                                self.pc.wrapping_add(4)
                            }
                        }
                        Instr::Jal { .. } => step.next_pc, // target known at fetch
                        Instr::Jalr { .. } => {
                            self.predicted_event = true;
                            self.pc.wrapping_add(4) // indirect: predict fall-through
                        }
                        _ => step.next_pc,
                    };
                    self.mispredicted = predicted_next != step.next_pc;
                    if self.mispredicted {
                        ctx.shared.wrong_path = true;
                    }
                    ctx.shared.next_fetch_pc = predicted_next;
                }

                // Initialize dispatch-time identifiers (paper §4).
                let sources = self.instr.sources();
                let src = |k: usize| {
                    sources
                        .get(k)
                        .map(|r| RenameFile::value_ident(r.flat_index()))
                        .unwrap_or(TokenIdent::NONE)
                };
                ctx.set_slot(S_SRC1, src(0));
                ctx.set_slot(S_SRC2, src(1));
                let (g, f) = match self.instr.dest() {
                    Some(minirisc::ArchReg::Gpr(_)) => (TokenIdent::ANY, TokenIdent::NONE),
                    Some(minirisc::ArchReg::Fpr(_)) => (TokenIdent::NONE, TokenIdent::ANY),
                    None => (TokenIdent::NONE, TokenIdent::NONE),
                };
                ctx.set_slot(S_GREN, g);
                ctx.set_slot(S_FREN, f);

                // I-cache access; a miss stalls fetch and delays dispatch.
                let penalty = ctx.shared.memsys.fetch_penalty(self.pc);
                if penalty > 0 {
                    ctx.shared.fetch_stall = penalty;
                }
                self.ready_at = ctx.shared.now + 1 + penalty as u64;
            }
            EdgeKind::DispExec(unit) => {
                self.dispatch_bookkeeping(ctx);
                self.start_execute(unit, ctx);
            }
            EdgeKind::DispRs(unit) => {
                // Capture the producers to wait for *before* renaming the
                // destination (the instruction may read its own dest reg).
                let sources = self.instr.sources();
                {
                    let rename: &RenameFile = ctx.managers.downcast(ctx.shared.ids.rename);
                    let wait = |k: usize| {
                        sources
                            .get(k)
                            .and_then(|r| rename.pending_producer(r.flat_index()))
                            .map(ResultBus::seq_ident)
                            .unwrap_or(TokenIdent::NONE)
                    };
                    let w1 = wait(0);
                    let w2 = wait(1);
                    ctx.set_slot(S_WAIT1, w1);
                    ctx.set_slot(S_WAIT2, w2);
                }
                self.unit = Some(unit);
                self.dispatch_bookkeeping(ctx);
            }
            EdgeKind::Issue(unit) => {
                self.start_execute(unit, ctx);
            }
            EdgeKind::Comp(_) => {
                if !self.phantom {
                    if let Some(dest) = self.instr.dest() {
                        let rename: &mut RenameFile =
                            ctx.managers.downcast_mut(ctx.shared.ids.rename);
                        rename.complete_write(dest.flat_index(), self.seq);
                    }
                    let bus: &mut ResultBus = ctx.managers.downcast_mut(ctx.shared.ids.bus);
                    bus.complete(self.seq);
                    if self.instr.is_control() || self.mispredicted {
                        self.resolve_control(ctx);
                    }
                }
            }
            EdgeKind::Retire => {
                ctx.shared.next_retire_seq += 1;
                ctx.shared.retired += 1;
                if let Some(dest) = self.instr.dest() {
                    let rename: &mut RenameFile = ctx.managers.downcast_mut(ctx.shared.ids.rename);
                    rename.retire_write(dest.flat_index(), self.seq);
                }
                let bus: &mut ResultBus = ctx.managers.downcast_mut(ctx.shared.ids.bus);
                bus.retire_up_to(self.seq + 1);
                if self.is_halting {
                    ctx.shared.halted = true;
                }
            }
            EdgeKind::ResetQ | EdgeKind::ResetR | EdgeKind::ResetE | EdgeKind::ResetC => {
                let osm = ctx.osm;
                ctx.shared.squashed += 1;
                ctx.shared.phantoms.retain(|o| *o != osm);
                // Undo the rename if this phantom had dispatched.
                if !matches!(kind, EdgeKind::ResetQ) {
                    if let Some(dest) = self.instr.dest() {
                        let rename: &mut RenameFile =
                            ctx.managers.downcast_mut(ctx.shared.ids.rename);
                        rename.abort_write(dest.flat_index(), self.seq);
                    }
                }
                // Free the unit's latency timer if we died mid-execution.
                if matches!(kind, EdgeKind::ResetE) {
                    if let Some(unit) = self.unit {
                        ctx.shared.unit_timer[unit.index()] = 0;
                        let pool: &mut ExclusivePool =
                            ctx.managers.downcast_mut(ctx.shared.ids.units[unit.index()]);
                        pool.block_release(0, false);
                    }
                }
                let reset: &mut ResetManager = ctx.managers.downcast_mut(ctx.shared.ids.reset);
                reset.disarm(osm);
            }
        }
    }
}

/// The OSM-based PowerPC-750 simulator.
pub struct PpcOsmSim {
    machine: Machine<PpcShared>,
    /// Manager handles.
    pub ids: PpcManagers,
    spec: Arc<StateMachineSpec>,
}

impl std::fmt::Debug for PpcOsmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PpcOsmSim")
            .field("cycle", &self.machine.cycle())
            .field("retired", &self.machine.shared.retired)
            .finish()
    }
}

impl PpcOsmSim {
    /// Builds the model and loads `program`.
    pub fn new(cfg: PpcConfig, program: &Program) -> Self {
        let oracle = Oracle::new(program);
        let next_fetch_pc = oracle.next_pc();
        let shared = PpcShared {
            oracle,
            memsys: MemSystem::new(cfg.mem),
            bht: Bht::new(cfg.bht_entries),
            now: 0,
            next_fetch_pc,
            wrong_path: false,
            stop_fetch: false,
            halted: false,
            fetch_seq: 0,
            next_dispatch_seq: 0,
            next_retire_seq: 0,
            phantoms: Vec::new(),
            fetch_stall: 0,
            unit_timer: [0; 6],
            retired: 0,
            squashed: 0,
            branches: 0,
            mispredicts: 0,
            edge_kinds: Vec::new(),
            ids: PpcManagers {
                fq: ManagerId(u32::MAX),
                fbw: ManagerId(u32::MAX),
                dbw: ManagerId(u32::MAX),
                rbw: ManagerId(u32::MAX),
                cq: ManagerId(u32::MAX),
                gren: ManagerId(u32::MAX),
                fren: ManagerId(u32::MAX),
                rename: ManagerId(u32::MAX),
                bus: ManagerId(u32::MAX),
                units: [ManagerId(u32::MAX); 6],
                rs: [ManagerId(u32::MAX); 6],
                reset: ManagerId(u32::MAX),
            },
            cfg,
        };
        let mut machine = Machine::new(shared);
        let ids = PpcManagers {
            fq: machine.add_manager(ExclusivePool::new("fetch-queue", cfg.fetch_queue)),
            fbw: machine.add_manager(CountingPool::per_cycle("fetch-bw", cfg.fetch_bw)),
            dbw: machine.add_manager(CountingPool::per_cycle("dispatch-bw", cfg.dispatch_bw)),
            rbw: machine.add_manager(CountingPool::per_cycle("retire-bw", cfg.retire_bw)),
            cq: machine.add_manager(ExclusivePool::new("completion-queue", cfg.completion_queue)),
            gren: machine.add_manager(CountingPool::new("gpr-rename", cfg.gpr_rename)),
            fren: machine.add_manager(CountingPool::new("fpr-rename", cfg.fpr_rename)),
            rename: machine.add_manager(RenameFile::new("rename-map", 64)),
            bus: machine.add_manager(ResultBus::new("result-bus")),
            units: UNITS.map(|u| {
                machine.add_manager(ExclusivePool::new(format!("unit-{}", u.name()), 1))
            }),
            rs: UNITS.map(|u| {
                machine.add_manager(ExclusivePool::new(format!("rs-{}", u.name()), 1))
            }),
            reset: machine.add_manager(ResetManager::new("reset")),
        };
        machine.shared.ids = ids;
        let spec = build_spec(&ids);
        machine.shared.edge_kinds = classify_edges(&spec);
        for _ in 0..cfg.osm_count.max(cfg.fetch_queue + cfg.completion_queue + 2) {
            machine.add_osm(&spec, PpcOp::default());
        }
        machine.set_restart_policy(RestartPolicy::NoRestart);
        PpcOsmSim { machine, ids, spec }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<PpcShared> {
        &self.machine
    }

    /// Mutable access to the machine.
    pub fn machine_mut(&mut self) -> &mut Machine<PpcShared> {
        &mut self.machine
    }

    /// Captures a full mid-run checkpoint (machine, managers, oracle,
    /// memory system, predictor).
    ///
    /// # Errors
    /// [`ModelError::SnapshotUnsupported`] if a manager without snapshot
    /// support was installed.
    pub fn checkpoint(&self) -> Result<Checkpoint<PpcShared>, ModelError> {
        self.machine.checkpoint()
    }

    /// Rewinds the simulator to `ckpt` (which must come from this
    /// simulator's own [`PpcOsmSim::checkpoint`]).
    ///
    /// # Errors
    /// [`ModelError::SnapshotMismatch`] if the checkpoint shape does not
    /// match this machine.
    pub fn restore(&mut self, ckpt: &Checkpoint<PpcShared>) -> Result<(), ModelError> {
        self.machine.restore(ckpt)
    }

    /// Serializes a full checkpoint to the versioned, digest-sealed on-disk
    /// byte format (see [`osm_core::CHECKPOINT_MAGIC`]).
    ///
    /// # Errors
    /// Propagates checkpoint errors; [`ModelError::SnapshotUnsupported`] if
    /// any component lacks a byte codec.
    pub fn checkpoint_bytes(&self) -> Result<Vec<u8>, ModelError> {
        let ckpt = self.machine.checkpoint()?;
        let shared_bytes = ckpt.shared().encode_state();
        self.machine.encode_checkpoint(&ckpt, &shared_bytes)
    }

    /// Restores this simulator from bytes written by
    /// [`PpcOsmSim::checkpoint_bytes`] on a same-construction simulator.
    ///
    /// # Errors
    /// [`ModelError::SnapshotMismatch`] if the bytes are damaged or were
    /// taken from a differently-configured machine.
    pub fn restore_checkpoint_bytes(&mut self, bytes: &[u8]) -> Result<(), ModelError> {
        let template = &self.machine.shared;
        let ckpt = self
            .machine
            .decode_checkpoint(bytes, |b| PpcShared::decode_state(b, template))?;
        self.machine.restore(&ckpt)
    }

    /// Installs a deterministic fault injector in front of manager
    /// `target` (any of the handles in [`PpcOsmSim::ids`]) and returns the
    /// operator handle for it.
    pub fn inject_faults(&mut self, target: ManagerId, plan: FaultPlan) -> FaultHandle {
        FaultInjector::install(&mut self.machine.managers, target, plan)
    }

    /// The Fig. 2 spec.
    pub fn spec(&self) -> &Arc<StateMachineSpec> {
        &self.spec
    }

    /// Runs until halt or `max_cycles`.
    ///
    /// # Errors
    /// Propagates [`ModelError`] (deadlock).
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<PpcResult, ModelError> {
        while !self.machine.shared.halted && self.machine.cycle() < max_cycles {
            self.machine.step()?;
        }
        Ok(self.result())
    }

    /// Arms the stall watchdog: if no OSM makes progress for `cycles`
    /// consecutive cycles (see [`osm_core::Machine::set_stall_limit`]),
    /// stepping fails with a diagnosed [`ModelError::Stalled`].
    pub fn set_stall_limit(&mut self, cycles: Option<u64>) {
        self.machine.set_stall_limit(cycles);
    }

    /// Turns on the full observability stack: token-event log, derived
    /// metrics, and stall-cause attribution. Call before the first step for
    /// reports that reconcile exactly with [`osm_core::Stats`].
    pub fn enable_observability(&mut self) {
        self.machine.enable_event_log();
        self.machine.enable_metrics();
        self.machine.enable_stall_attribution();
    }

    /// Structured metrics (state occupancy, manager utilization, throughput
    /// windows), if metrics are enabled.
    pub fn metrics_report(&self) -> Option<MetricsReport> {
        self.machine.metrics_report()
    }

    /// Stall-cause histogram (where the stall cycles went), if stall
    /// attribution is enabled.
    pub fn stall_histogram(&self) -> Option<StallHistogram> {
        self.machine
            .stall_attribution()
            .map(|t| t.histogram(&self.machine.managers))
    }

    /// Chrome `chrome://tracing` / Perfetto JSON of the recorded event log,
    /// if the event log is enabled.
    pub fn chrome_trace(&self) -> Option<String> {
        export::chrome_trace_for(&self.machine)
    }

    /// Textual per-cycle pipeline diagram of cycles `[from, to)`, if the
    /// event log is enabled.
    pub fn pipeline_diagram(&self, from: u64, to: u64) -> Option<String> {
        export::pipeline_diagram_for(&self.machine, from, to)
    }

    /// One-line scheduler state dump (for model-diff debugging).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let mut counts = std::collections::BTreeMap::new();
        for osm in self.machine.osms() {
            *counts.entry(osm.state_name().to_owned()).or_insert(0u32) += 1;
        }
        format!(
            "disp={} ret={} states={:?}",
            self.machine.shared.next_dispatch_seq, self.machine.shared.next_retire_seq, counts
        )
    }

    /// Snapshot of the result counters.
    pub fn result(&self) -> PpcResult {
        let s = &self.machine.shared;
        PpcResult {
            cycles: self.machine.cycle(),
            retired: s.retired,
            squashed: s.squashed,
            branches: s.branches,
            mispredicts: s.mispredicts,
            exit_code: s.oracle.exit_code,
            output: s.oracle.output.clone(),
            icache_misses: s.memsys.icache.stats.misses,
            dcache_misses: s.memsys.dcache.stats.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::assemble;

    fn run(src: &str) -> PpcResult {
        let p = assemble(src, 0x1000).expect("assembles");
        let mut sim = PpcOsmSim::new(PpcConfig::paper(), &p);
        let r = sim.run_to_halt(1_000_000).expect("no deadlock");
        assert!(sim.machine.shared.halted, "program did not halt");
        r
    }

    const SUM_LOOP: &str = "
        li r1, 10
        li r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        li r10, 0
        add r11, r2, r0
        syscall
    ";

    #[test]
    fn functional_result_matches_iss() {
        let r = run(SUM_LOOP);
        assert_eq!(r.exit_code, 55);
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut iss = minirisc::Iss::with_program(minirisc::SparseMemory::new(), &p);
        iss.run(100_000).unwrap();
        assert_eq!(r.retired, iss.retired);
        assert_eq!(r.output, iss.output);
    }

    #[test]
    fn dual_issue_beats_single_issue_shape() {
        // Independent ALU ops in a hot loop: IPC should exceed 1 (dual
        // dispatch across IU1/IU2).
        let mut src = String::from("li r1, 300\nloop:\n");
        for k in 0..12 {
            src.push_str(&format!("addi r{}, r0, {}\n", 2 + (k % 6), k));
        }
        src.push_str("addi r1, r1, -1\nbne r1, r0, loop\nhalt\n");
        let r = run(&src);
        assert!(
            r.cpi() < 0.95,
            "cpi {} should reflect dual issue",
            r.cpi()
        );
    }

    #[test]
    fn branch_predictor_learns_loop() {
        let r = run(SUM_LOOP);
        // The backward branch is taken 9 times; after two taken executions
        // the 2-bit counter predicts taken. Expect only a few mispredicts
        // (warm-up + final not-taken).
        assert!(r.branches >= 10);
        assert!(
            r.mispredicts <= 4,
            "too many mispredicts: {} of {}",
            r.mispredicts,
            r.branches
        );
        assert!(r.mispredicts >= 1);
    }

    #[test]
    fn mispredicts_squash_phantoms() {
        // Alternating branch direction defeats the 2-bit counter.
        let r = run(
            "
            li r1, 40
            li r3, 0
        loop:
            andi r2, r1, 1
            beq r2, r0, even
            addi r3, r3, 1
        even:
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            add r11, r3, r0
            syscall
        ",
        );
        assert_eq!(r.exit_code, 20);
        assert!(r.squashed > 0, "alternating branch must squash");
        assert!(r.mispredicts > 5);
    }

    #[test]
    fn reservation_station_path_is_used() {
        // A dependency chain forces RS waiting; the machine must still
        // complete correctly.
        let r = run(
            "
            li r1, 1
            mul r2, r1, r1
            mul r3, r2, r2
            add r4, r3, r3
            li r10, 0
            add r11, r4, r0
            syscall
        ",
        );
        assert_eq!(r.exit_code, 2);
    }

    #[test]
    fn fp_and_int_units_overlap() {
        let fp_mixed = run(
            "
            li r1, 50
            li r2, 3
            cvtsw f1, r2
            cvtsw f2, r1
        loop:
            fmul f3, f1, f2
            addi r4, r4, 1
            addi r5, r5, 2
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        ",
        );
        // FP multiply (4 cycles) overlaps integer work: CPI well under the
        // serial bound of (4+3+1)/5.
        assert!(fp_mixed.cpi() < 1.6, "cpi {}", fp_mixed.cpi());
    }

    #[test]
    fn in_order_retirement_and_completion_queue_bound() {
        // div (19 cycles) followed by many independent adds: the adds finish
        // early out of order but cannot retire past the div (completion
        // queue fills), bounding how far the frontend runs ahead.
        let r = run(
            "
            li r1, 9
            li r2, 3
            div r3, r1, r2
            addi r4, r0, 1
            addi r5, r0, 2
            addi r6, r0, 3
            addi r7, r0, 4
            addi r8, r0, 5
            addi r9, r0, 6
            addi r12, r0, 7
            addi r13, r0, 8
            li r10, 0
            add r11, r3, r0
            syscall
        ",
        );
        assert_eq!(r.exit_code, 3);
        // The div's latency dominates: total cycles must exceed it.
        assert!(r.cycles > 19);
    }

    #[test]
    fn load_store_traffic_is_correct() {
        let r = run(
            "
            la r1, buf
            li r2, 16
            li r3, 0
        fill:
            sw r2, 0(r1)
            addi r1, r1, 4
            addi r2, r2, -1
            bne r2, r0, fill
            la r1, buf
            li r2, 16
        sum:
            lw r4, 0(r1)
            add r3, r3, r4
            addi r1, r1, 4
            addi r2, r2, -1
            bne r2, r0, sum
            li r10, 0
            add r11, r3, r0
            syscall
        buf:
            .space 64
        ",
        );
        assert_eq!(r.exit_code, 136);
        assert!(r.dcache_misses > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(SUM_LOOP);
        let b = run(SUM_LOOP);
        assert_eq!(a, b);
    }

    #[test]
    fn spec_is_figure2_shaped() {
        let p = assemble("halt\n", 0).unwrap();
        let sim = PpcOsmSim::new(PpcConfig::paper(), &p);
        let spec = sim.spec();
        assert_eq!(spec.state_count(), 5);
        // fetch + 4 resets + 6 dispexec + 6 disprs + 6 issue + 6 comp + retire
        assert_eq!(spec.edge_count(), 30);
        // Q has both direct-to-unit and to-RS outgoing edges (Fig. 2's
        // multiple execution paths).
        let q = spec.find_state("Q").unwrap();
        assert!(spec.out_edges(q).len() >= 13);
    }

    #[test]
    fn checkpoint_restore_replays_exactly() {
        // Checkpoint mid-run (in-memory snapshot path), keep running, then
        // rewind and verify the continuation is identical.
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut sim = PpcOsmSim::new(PpcConfig::paper(), &p);
        for _ in 0..25 {
            sim.machine_mut().step().unwrap();
        }
        let ckpt = sim.checkpoint().unwrap();
        let reference = sim.run_to_halt(100_000).unwrap();
        sim.restore(&ckpt).unwrap();
        assert_eq!(sim.machine().cycle(), 25);
        let replay = sim.run_to_halt(100_000).unwrap();
        assert_eq!(replay, reference);
    }

    #[test]
    fn checkpoint_bytes_restore_into_fresh_sim_replays_exactly() {
        // Use the alternating-branch program so the checkpoint lands with
        // wrong-path phantoms, BHT training, rename traffic and squashes in
        // flight — the hardest state to round-trip through bytes.
        let src = "
            li r1, 40
            li r3, 0
        loop:
            andi r2, r1, 1
            beq r2, r0, even
            addi r3, r3, 1
        even:
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            add r11, r3, r0
            syscall
        ";
        let p = assemble(src, 0x1000).unwrap();
        let mut sim = PpcOsmSim::new(PpcConfig::paper(), &p);
        for _ in 0..60 {
            sim.machine_mut().step().unwrap();
        }
        let bytes = sim.checkpoint_bytes().unwrap();
        let reference = sim.run_to_halt(1_000_000).unwrap();
        drop(sim); // the original is gone — restore must work from bytes alone

        let mut fresh = PpcOsmSim::new(PpcConfig::paper(), &p);
        fresh.restore_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(fresh.machine().cycle(), 60);
        let replay = fresh.run_to_halt(1_000_000).unwrap();
        assert_eq!(replay, reference);

        // A flipped byte anywhere must be caught by the seal.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let mut victim = PpcOsmSim::new(PpcConfig::paper(), &p);
        assert!(victim.restore_checkpoint_bytes(&bad).is_err());

        // A differently-configured machine refuses the bytes.
        let other_cfg = PpcConfig {
            bht_entries: 128,
            ..PpcConfig::paper()
        };
        let mut other = PpcOsmSim::new(other_cfg, &p);
        assert!(other.restore_checkpoint_bytes(&bytes).is_err());
    }

    #[test]
    fn jalr_always_mispredicts() {
        let r = run(
            "
            la r1, target
            jalr r31, 0(r1)
            nop
        target:
            halt
        ",
        );
        assert!(r.mispredicts >= 1);
        assert!(r.squashed >= 1);
    }
}
