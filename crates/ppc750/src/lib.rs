//! # ppc750 — the PowerPC 750 case study (paper §5.2)
//!
//! A dual-issue out-of-order superscalar modeled twice over the same
//! functional substrate:
//!
//! * [`PpcOsmSim`] — the OSM model: fetch queue, six function units with
//!   reservation stations, rename buffers and a completion queue are token
//!   managers; operations follow the Fig. 2 state machine with both the
//!   direct-to-unit and through-reservation-station dispatch paths.
//! * `PpcPortSim` (module `port_model`) — the hardware-centric baseline:
//!   the same micro-architecture expressed as port/signal-connected modules
//!   on the `portsim` kernel, standing in for the SystemC model the paper
//!   compares against.
//!
//! ```
//! use minirisc::assemble;
//! use ppc750::{PpcConfig, PpcOsmSim, PpcPortSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("li r11, 3\nli r10, 0\nsyscall\n", 0x1000)?;
//! let osm = PpcOsmSim::new(PpcConfig::paper(), &program).run_to_halt(100_000)?;
//! let port = PpcPortSim::new(PpcConfig::paper(), &program).run_to_halt(100_000);
//! assert_eq!(osm.exit_code, 3);
//! assert_eq!(osm.cycles, port.cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod oracle;
mod osm_model;
mod port_model;
mod predictor;
mod rename;

pub use config::{Latencies, PpcConfig, PpcResult};
pub use oracle::{Oracle, OracleStep};
pub use osm_model::{
    build_spec, units_for, PpcManagers, PpcOsmSim, PpcShared, Unit, S_FREN, S_GREN, S_SRC1,
    S_SRC2, S_WAIT1, S_WAIT2, UNITS,
};
pub use port_model::PpcPortSim;
pub use predictor::Bht;
pub use rename::{RenameFile, ResultBus};
