//! Configuration and result types shared by the OSM model and the
//! port/signal baseline model.

use memsys::MemSystemConfig;

/// Per-class execute latencies (cycles of unit occupancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer ALU (both IUs).
    pub alu: u32,
    /// Multiply (IU1 only).
    pub mul: u32,
    /// Divide/remainder (IU1 only).
    pub div: u32,
    /// FP add/sub/compare/convert.
    pub fadd: u32,
    /// FP multiply.
    pub fmul: u32,
    /// FP divide.
    pub fdiv: u32,
    /// Load/store base latency (D-cache penalty added on top).
    pub lsu: u32,
    /// System register unit.
    pub sru: u32,
    /// Branch processing unit.
    pub bpu: u32,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            alu: 1,
            mul: 3,
            div: 19,
            fadd: 3,
            fmul: 4,
            fdiv: 17,
            lsu: 2,
            sru: 2,
            bpu: 1,
        }
    }
}

/// Timing configuration of the PowerPC-750-like core.
#[derive(Debug, Clone, Copy)]
pub struct PpcConfig {
    /// Memory subsystem.
    pub mem: MemSystemConfig,
    /// Fetch queue entries (paper: 6).
    pub fetch_queue: usize,
    /// Completion queue entries (paper: 6).
    pub completion_queue: usize,
    /// GPR rename buffers (paper: 6).
    pub gpr_rename: u64,
    /// FPR rename buffers (paper: 6).
    pub fpr_rename: u64,
    /// Instructions fetched per cycle.
    pub fetch_bw: u64,
    /// Instructions dispatched per cycle (paper: dual issue).
    pub dispatch_bw: u64,
    /// Instructions retired per cycle.
    pub retire_bw: u64,
    /// Execute latencies.
    pub lat: Latencies,
    /// Branch history table entries (2-bit counters, power of two).
    pub bht_entries: usize,
    /// OSM instances (in-flight operation slots).
    pub osm_count: usize,
}

impl PpcConfig {
    /// The configuration used by the paper-reproduction experiments.
    pub fn paper() -> Self {
        PpcConfig {
            mem: MemSystemConfig::ppc750_like(),
            fetch_queue: 6,
            completion_queue: 6,
            gpr_rename: 6,
            fpr_rename: 6,
            fetch_bw: 2,
            dispatch_bw: 2,
            retire_bw: 2,
            lat: Latencies::default(),
            bht_entries: 512,
            osm_count: 14,
        }
    }
}

impl Default for PpcConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of running a program on either PPC-750 simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpcResult {
    /// Total cycles until the halting instruction retired.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Squashed wrong-path operations.
    pub squashed: u64,
    /// Executed conditional branches + indirect jumps (prediction events).
    pub branches: u64,
    /// Mispredicted of those.
    pub mispredicts: u64,
    /// Program exit code.
    pub exit_code: u32,
    /// Program output bytes.
    pub output: Vec<u8>,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
}

impl PpcResult {
    /// Cycles per retired instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired as f64
        }
    }

    /// Output as lossy UTF-8.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_spec_sheet() {
        let c = PpcConfig::paper();
        assert_eq!(c.fetch_queue, 6);
        assert_eq!(c.completion_queue, 6);
        assert_eq!(c.dispatch_bw, 2);
        assert_eq!(c.gpr_rename, 6);
    }

    #[test]
    fn cpi_computation() {
        let r = PpcResult {
            cycles: 100,
            retired: 80,
            squashed: 0,
            branches: 0,
            mispredicts: 0,
            exit_code: 0,
            output: Vec::new(),
            icache_misses: 0,
            dcache_misses: 0,
        };
        assert!((r.cpi() - 1.25).abs() < 1e-12);
    }
}
