//! The hardware-centric (port/signal) PowerPC-750 baseline model.
//!
//! This is the model the paper compares OSM against (§5.2): the same
//! micro-architecture expressed in the SystemC style — explicit modules
//! (front end, dispatcher, six execution units, rename unit, completion
//! unit) connected by dozens of typed signals, evaluated to convergence
//! through the `portsim` delta-cycle kernel every clock. All inter-module
//! communication goes through wires: head-of-queue buses, grant buses,
//! result broadcast buses, status lines. The kernel overhead of this
//! explicit communication (signal writes, convergence iterations, whole-bus
//! updates) is exactly what makes hardware-centric models slower than OSM
//! models — the speed ratio is measured by the `bench` crate.
//!
//! The timing policies mirror the OSM model so the two can be validated
//! against each other (the paper reports ≤3% differences between
//! independently written models; ours share policy helpers so the expected
//! difference is ~0, and any residual is reported by the accuracy harness).

use crate::config::{PpcConfig, PpcResult};
use crate::oracle::Oracle;
use crate::osm_model::{units_for, Unit, UNITS};
use crate::predictor::Bht;
use crate::rename::{RenameFile, ResultBus};
use memsys::{Cache, Tlb};
use minirisc::{decode, ArchReg, Instr, InstrClass, Memory, Program};
use osm_core::OsmId;
use portsim::{Module, PortKernel, Signal, SignalStore};
use std::collections::VecDeque;

/// One in-flight operation as it travels across the wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PortOp {
    seq: u64,
    pc: u32,
    instr: Instr,
    phantom: bool,
    taken: bool,
    next_pc: u32,
    mispredicted: bool,
    predicted_event: bool,
    mem_addr: Option<u32>,
    is_halting: bool,
    ready_at: u64,
}

impl Default for PortOp {
    fn default() -> Self {
        PortOp {
            seq: 0,
            pc: 0,
            instr: Instr::NOP,
            phantom: false,
            taken: false,
            next_pc: 0,
            mispredicted: false,
            predicted_event: false,
            mem_addr: None,
            is_halting: false,
            ready_at: 0,
        }
    }
}

/// Where the dispatcher routed an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Direct(usize),
    Rs(usize),
}

/// One dispatch grant on the dispatch bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispGrant {
    op: PortOp,
    route: Route,
    waits: [Option<u64>; 2],
    gdest: bool,
    fdest: bool,
}

/// Fetch redirect after a mispredicted branch resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Redirect {
    next_pc: u32,
    seq: u64,
}

/// Retirement notice on the retire bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RetireInfo {
    seq: u64,
    dest: Option<u8>,
}

/// All wires of the model (the paper notes the SystemC PPC model needs more
/// than 200 wires; the buses below carry equivalent fan-outs).
#[derive(Debug, Clone, Copy)]
struct Wires {
    fq_head: [Signal<Option<PortOp>>; 2],
    disp: [Signal<Option<DispGrant>>; 2],
    unit_free: [Signal<bool>; 6],
    rs_free: [Signal<bool>; 6],
    complete: [Signal<Option<PortOp>>; 6],
    reg_ready: Signal<[bool; 64]>,
    reg_pending: Signal<[Option<u64>; 64]>,
    gren_free: Signal<u64>,
    fren_free: Signal<u64>,
    cq_free: Signal<u64>,
    redirect: Signal<Option<Redirect>>,
    branch_train: Signal<Option<(u32, bool)>>,
    retire: [Signal<Option<RetireInfo>>; 2],
    now: Signal<u64>,
}

fn dest_flat(instr: &Instr) -> Option<u8> {
    instr.dest().map(|r| r.flat_index() as u8)
}

// ---------------------------------------------------------------------------
// Front end: fetcher + fetch queue + BHT + I-cache + oracle.
// ---------------------------------------------------------------------------

struct FrontEnd {
    w: Wires,
    cfg: PpcConfig,
    oracle: Oracle,
    bht: Bht,
    icache: Cache,
    itlb: Tlb,
    fq: VecDeque<PortOp>,
    next_fetch_pc: u32,
    wrong_path: bool,
    stop_fetch: bool,
    fetch_stall: u32,
    fetch_seq: u64,
    now: u64,
    squashed: u64,
}

impl FrontEnd {
    fn fetch_one(&mut self) {
        let mut op = PortOp {
            seq: self.fetch_seq,
            ..PortOp::default()
        };
        self.fetch_seq += 1;
        if self.wrong_path {
            op.phantom = true;
            op.pc = self.next_fetch_pc;
            self.next_fetch_pc = op.pc.wrapping_add(4);
            let word = self.oracle.mem.read_u32(op.pc);
            op.instr = decode(word).unwrap_or(Instr::NOP);
        } else {
            let step = self.oracle.step();
            op.pc = step.pc;
            op.instr = step.instr;
            op.next_pc = step.next_pc;
            op.taken = step.taken;
            op.mem_addr = step.mem_addr;
            op.is_halting = step.is_halting;
            if op.is_halting {
                self.stop_fetch = true;
            }
            let predicted_next = match op.instr {
                Instr::Branch { offset, .. } => {
                    op.predicted_event = true;
                    if self.bht.predict(op.pc) {
                        op.pc.wrapping_add(offset as u32)
                    } else {
                        op.pc.wrapping_add(4)
                    }
                }
                Instr::Jal { .. } => step.next_pc,
                Instr::Jalr { .. } => {
                    op.predicted_event = true;
                    op.pc.wrapping_add(4)
                }
                _ => step.next_pc,
            };
            op.mispredicted = predicted_next != step.next_pc;
            if op.mispredicted {
                self.wrong_path = true;
            }
            self.next_fetch_pc = predicted_next;
        }
        let tlb = self.itlb.access(op.pc);
        let cache = match self.icache.access(op.pc) {
            memsys::CacheOutcome::Hit => 0,
            memsys::CacheOutcome::Miss { penalty } => penalty + self.cfg.mem.bus_latency,
        };
        let penalty = tlb + cache;
        if penalty > 0 {
            self.fetch_stall = penalty;
        }
        op.ready_at = self.now + 1 + penalty as u64;
        self.fq.push_back(op);
    }
}

impl Module for FrontEnd {
    fn name(&self) -> &str {
        "front-end"
    }

    fn eval(&mut self, signals: &mut SignalStore) {
        signals.write(self.w.fq_head[0], self.fq.front().copied());
        signals.write(self.w.fq_head[1], self.fq.get(1).copied());
        signals.write(self.w.now, self.now);
    }

    fn tick(&mut self, signals: &mut SignalStore) {
        // Pop dispatched head entries.
        for k in 0..2 {
            if signals.read(self.w.disp[k]).is_some() {
                self.fq.pop_front();
            }
        }
        // Apply a redirect from a resolved mispredicted branch. The
        // squashed entries free their queue slots within this cycle, just
        // as the OSM model's reset edges run before the idle fetchers in
        // the director's age order.
        if let Some(r) = signals.read(self.w.redirect) {
            self.wrong_path = false;
            self.next_fetch_pc = r.next_pc;
            self.fetch_seq = r.seq + 1;
            let before = self.fq.len();
            self.fq.retain(|op| !op.phantom);
            self.squashed += (before - self.fq.len()) as u64;
        }
        // Branch predictor training.
        if let Some((pc, taken)) = signals.read(self.w.branch_train) {
            self.bht.train(pc, taken);
        }
        let room = self.cfg.fetch_queue - self.fq.len();

        // Fetch.
        self.fetch_stall = self.fetch_stall.saturating_sub(1);
        for _ in 0..self.cfg.fetch_bw.min(room as u64) {
            if self.stop_fetch || self.fetch_stall > 0 {
                break;
            }
            self.fetch_one();
        }
        self.now += 1;
    }
}

// ---------------------------------------------------------------------------
// Dispatcher: in-order dual dispatch, direct-to-unit else reservation station.
// ---------------------------------------------------------------------------

struct Dispatcher {
    w: Wires,
    next_dispatch_seq: u64,
}

impl Module for Dispatcher {
    fn name(&self) -> &str {
        "dispatcher"
    }

    fn eval(&mut self, signals: &mut SignalStore) {
        let now = signals.read(self.w.now);
        let reg_ready = signals.read(self.w.reg_ready);
        let reg_pending = signals.read(self.w.reg_pending);
        let mut cq_free = signals.read(self.w.cq_free);
        let mut gren = signals.read(self.w.gren_free);
        let mut fren = signals.read(self.w.fren_free);
        let mut unit_free: [bool; 6] =
            std::array::from_fn(|u| signals.read(self.w.unit_free[u]));
        let mut rs_free: [bool; 6] = std::array::from_fn(|u| signals.read(self.w.rs_free[u]));

        let mut grants: [Option<DispGrant>; 2] = [None, None];
        // Intra-cycle rename overlay: the second dispatch of a cycle must
        // see the first one's destination as an in-flight (unready) write,
        // exactly as the OSM director's age-ordered service provides.
        let mut overlay: Option<(usize, u64)> = None;

        for (k, grant) in grants.iter_mut().enumerate() {
            let expected = self.next_dispatch_seq + k as u64;
            let Some(op) = signals.read(self.w.fq_head[k]) else {
                break;
            };
            if op.seq != expected || now < op.ready_at {
                break;
            }
            let gdest = matches!(op.instr.dest(), Some(ArchReg::Gpr(_)));
            let fdest = matches!(op.instr.dest(), Some(ArchReg::Fpr(_)));
            if cq_free == 0 || (gdest && gren == 0) || (fdest && fren == 0) {
                break;
            }
            let sources = op.instr.sources();
            let operands_ready = sources.iter().all(|r| {
                reg_ready[r.flat_index()] && overlay.is_none_or(|(d, _)| d != r.flat_index())
            });
            let mut route = None;
            // Direct dispatch into a unit: operands ready, unit free, its
            // reservation station empty (program order within the unit).
            if operands_ready {
                for &u in units_for(op.instr.class()) {
                    if unit_free[u.index()] && rs_free[u.index()] {
                        route = Some(Route::Direct(u.index()));
                        break;
                    }
                }
            }
            // Otherwise into the unit's reservation station.
            if route.is_none() {
                for &u in units_for(op.instr.class()) {
                    if rs_free[u.index()] {
                        route = Some(Route::Rs(u.index()));
                        break;
                    }
                }
            }
            let Some(route) = route else {
                break; // in-order dispatch: the head blocks the rest
            };
            let mut waits = [None, None];
            if let Route::Rs(_) = route {
                for (i, r) in sources.iter().take(2).enumerate() {
                    waits[i] = match overlay {
                        Some((d, seq)) if d == r.flat_index() => Some(seq),
                        _ => reg_pending[r.flat_index()],
                    };
                }
            }
            match route {
                Route::Direct(u) => unit_free[u] = false,
                Route::Rs(u) => rs_free[u] = false,
            }
            if let Some(dest) = op.instr.dest() {
                overlay = Some((dest.flat_index(), op.seq));
            }
            cq_free -= 1;
            if gdest {
                gren -= 1;
            }
            if fdest {
                fren -= 1;
            }
            *grant = Some(DispGrant {
                op,
                route,
                waits,
                gdest,
                fdest,
            });
        }
        signals.write(self.w.disp[0], grants[0]);
        signals.write(self.w.disp[1], grants[1]);
    }

    fn tick(&mut self, signals: &mut SignalStore) {
        for k in 0..2 {
            if signals.read(self.w.disp[k]).is_some() {
                self.next_dispatch_seq += 1;
            }
        }
        if let Some(r) = signals.read(self.w.redirect) {
            self.next_dispatch_seq = r.seq + 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Execution unit (one instance per function unit): unit latch + RS latch.
// ---------------------------------------------------------------------------

struct ExecUnit {
    w: Wires,
    unit: Unit,
    cfg: PpcConfig,
    latch: Option<PortOp>,
    timer: u32,
    rs: Option<(PortOp, [Option<u64>; 2])>,
    /// LSU only: the data cache and TLB.
    dcache: Option<(Cache, Tlb)>,
    squashed: u64,
}

impl ExecUnit {
    fn latency(&self, op: &PortOp) -> u32 {
        let lat = &self.cfg.lat;
        match op.instr.class() {
            InstrClass::IntAlu => lat.alu,
            InstrClass::IntMul => lat.mul,
            InstrClass::IntDiv => lat.div,
            InstrClass::FpAdd => lat.fadd,
            InstrClass::FpMul => lat.fmul,
            InstrClass::FpDiv => lat.fdiv,
            InstrClass::Load | InstrClass::Store => lat.lsu,
            InstrClass::System => lat.sru,
            InstrClass::Branch | InstrClass::Jump => lat.bpu,
        }
    }

    fn start(&mut self, op: PortOp) {
        let mut extra = self.latency(&op).saturating_sub(1);
        if let (Some((cache, tlb)), Some(addr)) = (self.dcache.as_mut(), op.mem_addr) {
            let t = tlb.access(addr);
            let c = match cache.access(addr) {
                memsys::CacheOutcome::Hit => 0,
                memsys::CacheOutcome::Miss { penalty } => penalty + self.cfg.mem.bus_latency,
            };
            extra += t + c;
        }
        self.timer = extra;
        self.latch = Some(op);
    }

    /// Waits satisfied, counting this cycle's broadcasts on the result bus.
    fn waits_done(&self, signals: &SignalStore, waits: &[Option<u64>; 2]) -> bool {
        waits.iter().all(|w| match w {
            None => true,
            Some(seq) => UNITS.iter().any(|u| {
                signals
                    .read(self.w.complete[u.index()])
                    .is_some_and(|c| c.seq == *seq)
            }),
        })
    }

    fn will_complete(&self) -> bool {
        self.latch.is_some() && self.timer == 0
    }
}

impl Module for ExecUnit {
    fn name(&self) -> &str {
        self.unit.name()
    }

    fn eval(&mut self, signals: &mut SignalStore) {
        let u = self.unit.index();
        let completing = if self.will_complete() {
            self.latch
        } else {
            None
        };
        signals.write(self.w.complete[u], completing);
        // Will the RS op issue this cycle? It needs the unit free (now or
        // by this cycle's completion) and its awaited producers broadcast.
        let unit_avail = self.latch.is_none() || completing.is_some();
        let issuing = match &self.rs {
            Some((_, waits)) => unit_avail && self.waits_done(signals, waits),
            None => false,
        };
        signals.write(self.w.unit_free[u], unit_avail && !issuing);
        signals.write(self.w.rs_free[u], self.rs.is_none() || issuing);
    }

    fn tick(&mut self, signals: &mut SignalStore) {
        let u = self.unit.index();
        // Completion leaves the unit.
        if self.will_complete() {
            self.latch = None;
        } else if self.timer > 0 {
            self.timer -= 1;
        }
        // Clear waits satisfied by this cycle's broadcasts.
        if let Some((_, waits)) = &mut self.rs {
            for w in waits.iter_mut() {
                if let Some(seq) = *w {
                    let done = UNITS.iter().any(|uu| {
                        signals
                            .read(self.w.complete[uu.index()])
                            .is_some_and(|c| c.seq == seq)
                    });
                    if done {
                        *w = None;
                    }
                }
            }
        }
        // Issue from the reservation station.
        if self.latch.is_none() {
            if let Some((_, waits)) = &self.rs {
                if waits.iter().all(Option::is_none) {
                    let (op, _) = self.rs.take().expect("checked");
                    self.start(op);
                }
            }
        }
        // Accept dispatch grants routed to this unit.
        for k in 0..2 {
            if let Some(g) = signals.read(self.w.disp[k]) {
                match g.route {
                    Route::Direct(d) if d == u => self.start(g.op),
                    Route::Rs(d) if d == u => self.rs = Some((g.op, g.waits)),
                    _ => {}
                }
            }
        }
        // Squash wrong-path occupants (visible from the next cycle, like
        // the OSM model's reset edges).
        if let Some(r) = signals.read(self.w.redirect) {
            if self.latch.is_some_and(|op| op.phantom && op.seq > r.seq) {
                self.latch = None;
                self.timer = 0;
                self.squashed += 1;
            }
            if self.rs.as_ref().is_some_and(|(op, _)| op.phantom && op.seq > r.seq) {
                self.rs = None;
                self.squashed += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rename unit: rename map, rename-buffer counters, result bus.
// ---------------------------------------------------------------------------

struct RenameUnit {
    w: Wires,
    rename: RenameFile,
    bus: ResultBus,
    gren_free: u64,
    fren_free: u64,
    /// (seq, flat reg) of every in-flight write, for squash accounting.
    inflight: Vec<(u64, u8)>,
}

impl Module for RenameUnit {
    fn name(&self) -> &str {
        "rename"
    }

    fn eval(&mut self, signals: &mut SignalStore) {
        // Publish the scoreboard buses, projecting this cycle's completions.
        let completing: Vec<u64> = UNITS
            .iter()
            .filter_map(|u| signals.read(self.w.complete[u.index()]))
            .filter(|c| !c.phantom)
            .map(|c| c.seq)
            .collect();
        let mut ready = [false; 64];
        let mut pending = [None; 64];
        for r in 0..64 {
            match self.rename.pending_producer(r) {
                None => ready[r] = true,
                Some(seq) => {
                    if completing.contains(&seq) {
                        ready[r] = true;
                    } else {
                        pending[r] = Some(seq);
                    }
                }
            }
        }
        signals.write(self.w.reg_ready, ready);
        signals.write(self.w.reg_pending, pending);
        // Project this cycle's retirements: retiring operations free their
        // rename buffers before younger ops dispatch (in the OSM model the
        // director serves the retiring seniors first).
        let mut gren = self.gren_free;
        let mut fren = self.fren_free;
        for k in 0..2 {
            if let Some(r) = signals.read(self.w.retire[k]) {
                if let Some(d) = r.dest {
                    if d < 32 {
                        gren += 1;
                    } else {
                        fren += 1;
                    }
                }
            }
        }
        signals.write(self.w.gren_free, gren);
        signals.write(self.w.fren_free, fren);
    }

    fn tick(&mut self, signals: &mut SignalStore) {
        // Completions broadcast results.
        for u in UNITS {
            if let Some(op) = signals.read(self.w.complete[u.index()]) {
                if !op.phantom {
                    if let Some(d) = dest_flat(&op.instr) {
                        self.rename.complete_write(d as usize, op.seq);
                    }
                    self.bus.complete(op.seq);
                }
            }
        }
        // Retirements free rename buffers and architect the values.
        for k in 0..2 {
            if let Some(r) = signals.read(self.w.retire[k]) {
                if let Some(d) = r.dest {
                    self.rename.retire_write(d as usize, r.seq);
                    self.inflight.retain(|(s, _)| *s != r.seq);
                    if d < 32 {
                        self.gren_free += 1;
                    } else {
                        self.fren_free += 1;
                    }
                }
                self.bus.retire_up_to(r.seq + 1);
            }
        }
        // New dispatches rename their destinations.
        for k in 0..2 {
            if let Some(g) = signals.read(self.w.disp[k]) {
                if let Some(d) = dest_flat(&g.op.instr) {
                    self.rename
                        .begin_write(d as usize, OsmId(0), g.op.seq);
                    self.inflight.push((g.op.seq, d));
                }
                if g.gdest {
                    self.gren_free -= 1;
                }
                if g.fdest {
                    self.fren_free -= 1;
                }
            }
        }
        // Squash: undo phantom renames, refund their buffers.
        if let Some(r) = signals.read(self.w.redirect) {
            let dead: Vec<(u64, u8)> = self
                .inflight
                .iter()
                .copied()
                .filter(|(s, _)| *s > r.seq)
                .collect();
            for (s, d) in &dead {
                self.rename.abort_write(*d as usize, *s);
                if *d < 32 {
                    self.gren_free += 1;
                } else {
                    self.fren_free += 1;
                }
            }
            self.inflight.retain(|(s, _)| *s <= r.seq);
            self.bus.squash_above(r.seq);
        }
    }
}

// ---------------------------------------------------------------------------
// Completion unit: completion queue, in-order retirement, redirect source.
// ---------------------------------------------------------------------------

struct CompletionUnit {
    w: Wires,
    cfg: PpcConfig,
    /// Completed operations waiting to retire, kept sorted by seq.
    buffer: Vec<PortOp>,
    /// Seqs holding completion-queue entries (allocated at dispatch).
    active: Vec<u64>,
    next_retire_seq: u64,
    retired: u64,
    squashed: u64,
    branches: u64,
    mispredicts: u64,
    halted: bool,
}

impl Module for CompletionUnit {
    fn name(&self) -> &str {
        "completion"
    }

    fn eval(&mut self, signals: &mut SignalStore) {
        // Retire up to retire_bw oldest completed ops, strictly in order.
        let mut retires: [Option<RetireInfo>; 2] = [None, None];
        for (seq, slot) in
            (self.next_retire_seq..).zip(retires.iter_mut().take(self.cfg.retire_bw as usize))
        {
            let Some(op) = self.buffer.iter().find(|o| o.seq == seq) else {
                break;
            };
            *slot = Some(RetireInfo {
                seq,
                dest: dest_flat(&op.instr),
            });
        }
        signals.write(self.w.retire[0], retires[0]);
        signals.write(self.w.retire[1], retires[1]);
        let retiring = retires.iter().flatten().count() as u64;
        signals.write(
            self.w.cq_free,
            self.cfg.completion_queue as u64 - self.active.len() as u64 + retiring,
        );

        // A completing right-path control op resolves prediction.
        let mut redirect = None;
        let mut train = None;
        if let Some(op) = signals.read(self.w.complete[Unit::Bpu.index()]) {
            if !op.phantom {
                if op.instr.class() == InstrClass::Branch {
                    train = Some((op.pc, op.taken));
                }
                if op.mispredicted {
                    redirect = Some(Redirect {
                        next_pc: op.next_pc,
                        seq: op.seq,
                    });
                }
            }
        }
        signals.write(self.w.redirect, redirect);
        signals.write(self.w.branch_train, train);
    }

    fn tick(&mut self, signals: &mut SignalStore) {
        // Accept completions.
        for u in UNITS {
            if let Some(op) = signals.read(self.w.complete[u.index()]) {
                self.buffer.push(op);
                if !op.phantom && op.predicted_event {
                    self.branches += 1;
                    if op.mispredicted {
                        self.mispredicts += 1;
                    }
                }
            }
        }
        // Apply retirements.
        for k in 0..2 {
            if let Some(r) = signals.read(self.w.retire[k]) {
                let pos = self
                    .buffer
                    .iter()
                    .position(|o| o.seq == r.seq)
                    .expect("retiring op is in the buffer");
                let op = self.buffer.swap_remove(pos);
                self.active.retain(|&s| s != op.seq);
                self.next_retire_seq = r.seq + 1;
                self.retired += 1;
                if op.is_halting {
                    self.halted = true;
                }
            }
        }
        // New dispatches claim completion-queue entries.
        for k in 0..2 {
            if let Some(g) = signals.read(self.w.disp[k]) {
                self.active.push(g.op.seq);
            }
        }
        // Squash phantoms.
        if let Some(r) = signals.read(self.w.redirect) {
            let before = self.buffer.len();
            self.buffer.retain(|o| !(o.phantom && o.seq > r.seq));
            self.squashed += (before - self.buffer.len()) as u64;
            self.active.retain(|&s| s <= r.seq);
        }
    }
}

// ---------------------------------------------------------------------------
// The assembled simulator.
// ---------------------------------------------------------------------------

/// The port/signal PowerPC-750 simulator (SystemC-style baseline).
pub struct PpcPortSim {
    kernel: PortKernel,
    front: usize,
    units: [usize; 6],
    completion: usize,
    cfg: PpcConfig,
}

impl std::fmt::Debug for PpcPortSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PpcPortSim")
            .field("cycles", &self.kernel.stats.cycles)
            .finish()
    }
}

impl PpcPortSim {
    /// Builds the module graph and loads `program`.
    pub fn new(cfg: PpcConfig, program: &Program) -> Self {
        let mut kernel = PortKernel::new();
        let s = &mut kernel.signals;
        let w = Wires {
            fq_head: [s.signal("fq_head0", None), s.signal("fq_head1", None)],
            disp: [s.signal("disp0", None), s.signal("disp1", None)],
            unit_free: std::array::from_fn(|u| s.signal(format!("unit_free{u}"), true)),
            rs_free: std::array::from_fn(|u| s.signal(format!("rs_free{u}"), true)),
            complete: std::array::from_fn(|u| s.signal(format!("complete{u}"), None)),
            reg_ready: s.signal("reg_ready", [true; 64]),
            reg_pending: s.signal("reg_pending", [None; 64]),
            gren_free: s.signal("gren_free", cfg.gpr_rename),
            fren_free: s.signal("fren_free", cfg.fpr_rename),
            cq_free: s.signal("cq_free", cfg.completion_queue as u64),
            redirect: s.signal("redirect", None),
            branch_train: s.signal("branch_train", None),
            retire: [s.signal("retire0", None), s.signal("retire1", None)],
            now: s.signal("now", 0u64),
        };

        let oracle = Oracle::new(program);
        let next_fetch_pc = oracle.next_pc();
        let front = kernel.add_module(FrontEnd {
            w,
            cfg,
            oracle,
            bht: Bht::new(cfg.bht_entries),
            icache: Cache::new(cfg.mem.icache),
            itlb: Tlb::new(cfg.mem.itlb),
            fq: VecDeque::new(),
            next_fetch_pc,
            wrong_path: false,
            stop_fetch: false,
            fetch_stall: 0,
            fetch_seq: 0,
            now: 0,
            squashed: 0,
        });
        kernel.add_module(Dispatcher {
            w,
            next_dispatch_seq: 0,
        });
        let units = UNITS.map(|unit| {
            kernel.add_module(ExecUnit {
                w,
                unit,
                cfg,
                latch: None,
                timer: 0,
                rs: None,
                dcache: (unit == Unit::Lsu)
                    .then(|| (Cache::new(cfg.mem.dcache), Tlb::new(cfg.mem.dtlb))),
                squashed: 0,
            })
        });
        kernel.add_module(RenameUnit {
            w,
            rename: RenameFile::new("rename", 64),
            bus: ResultBus::new("bus"),
            gren_free: cfg.gpr_rename,
            fren_free: cfg.fpr_rename,
            inflight: Vec::new(),
        });
        let completion = kernel.add_module(CompletionUnit {
            w,
            cfg,
            buffer: Vec::new(),
            active: Vec::new(),
            next_retire_seq: 0,
            retired: 0,
            squashed: 0,
            branches: 0,
            mispredicts: 0,
            halted: false,
        });
        PpcPortSim {
            kernel,
            front,
            units,
            completion,
            cfg,
        }
    }

    /// Number of hardware modules (paper compares module counts).
    pub fn module_count(&self) -> usize {
        self.kernel.module_count()
    }

    /// Kernel statistics (delta cycles, evals — the port-communication
    /// overhead the OSM model avoids).
    pub fn kernel_stats(&self) -> portsim::KernelStats {
        self.kernel.stats
    }

    /// Runs until the halting instruction retires or `max_cycles` elapse.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> PpcResult {
        while !self.halted() && self.kernel.stats.cycles < max_cycles {
            self.kernel.step();
        }
        self.result()
    }

    /// True once the halting instruction retired.
    pub fn halted(&self) -> bool {
        self.kernel.module::<CompletionUnit>(self.completion).halted
    }

    /// One-line module state dump (for model-diff debugging).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let front = self.kernel.module::<FrontEnd>(self.front);
        let completion = self.kernel.module::<CompletionUnit>(self.completion);
        let units: Vec<String> = self
            .units
            .iter()
            .map(|&i| {
                let u = self.kernel.module::<ExecUnit>(i);
                format!(
                    "{}:{}{}",
                    u.unit.name(),
                    u.latch.map(|o| o.seq.to_string()).unwrap_or_else(|| "-".into()),
                    u.rs.as_ref().map(|(o, _)| format!("/rs{}", o.seq)).unwrap_or_default()
                )
            })
            .collect();
        format!(
            "fq={} cbuf={} nret={} {}",
            front.fq.len(),
            completion.buffer.len(),
            completion.next_retire_seq,
            units.join(" ")
        )
    }

    /// Snapshot of the result counters.
    pub fn result(&self) -> PpcResult {
        let front = self.kernel.module::<FrontEnd>(self.front);
        let completion = self.kernel.module::<CompletionUnit>(self.completion);
        let lsu = self.kernel.module::<ExecUnit>(self.units[Unit::Lsu.index()]);
        let unit_squashes: u64 = self
            .units
            .iter()
            .map(|&i| self.kernel.module::<ExecUnit>(i).squashed)
            .sum();
        let _ = &self.cfg;
        PpcResult {
            cycles: self.kernel.stats.cycles,
            retired: completion.retired,
            squashed: front.squashed + completion.squashed + unit_squashes,
            branches: completion.branches,
            mispredicts: completion.mispredicts,
            exit_code: front.oracle.exit_code,
            output: front.oracle.output.clone(),
            icache_misses: front.icache.stats.misses,
            dcache_misses: lsu
                .dcache
                .as_ref()
                .map(|(c, _)| c.stats.misses)
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osm_model::PpcOsmSim;
    use minirisc::assemble;

    fn run_port(src: &str) -> PpcResult {
        let p = assemble(src, 0x1000).expect("assembles");
        let mut sim = PpcPortSim::new(PpcConfig::paper(), &p);
        let r = sim.run_to_halt(1_000_000);
        assert!(sim.halted(), "port model did not halt");
        r
    }

    fn run_osm(src: &str) -> PpcResult {
        let p = assemble(src, 0x1000).expect("assembles");
        let mut sim = PpcOsmSim::new(PpcConfig::paper(), &p);
        sim.run_to_halt(1_000_000).expect("no deadlock")
    }

    const SUM_LOOP: &str = "
        li r1, 10
        li r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        li r10, 0
        add r11, r2, r0
        syscall
    ";

    #[test]
    fn functional_result_matches_oracle() {
        let r = run_port(SUM_LOOP);
        assert_eq!(r.exit_code, 55);
    }

    #[test]
    fn agrees_with_osm_model_on_simple_loop() {
        let osm = run_osm(SUM_LOOP);
        let port = run_port(SUM_LOOP);
        assert_eq!(port.retired, osm.retired);
        assert_eq!(port.exit_code, osm.exit_code);
        let diff = (port.cycles as f64 - osm.cycles as f64).abs() / osm.cycles as f64;
        assert!(
            diff <= 0.03,
            "timing differs by {:.2}% (osm {}, port {})",
            diff * 100.0,
            osm.cycles,
            port.cycles
        );
    }

    #[test]
    fn agrees_with_osm_model_on_mispredicting_branches() {
        let src = "
            li r1, 60
            li r3, 0
        loop:
            andi r2, r1, 1
            beq r2, r0, even
            addi r3, r3, 1
        even:
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0
            add r11, r3, r0
            syscall
        ";
        let osm = run_osm(src);
        let port = run_port(src);
        assert_eq!(port.exit_code, osm.exit_code);
        assert_eq!(port.retired, osm.retired);
        let diff = (port.cycles as f64 - osm.cycles as f64).abs() / osm.cycles as f64;
        assert!(
            diff <= 0.03,
            "timing differs by {:.2}% (osm {}, port {})",
            diff * 100.0,
            osm.cycles,
            port.cycles
        );
    }

    #[test]
    fn agrees_with_osm_model_on_memory_and_fp() {
        let src = "
            la r1, buf
            li r2, 24
            li r3, 1
            cvtsw f1, r3
        fill:
            sw r2, 0(r1)
            flw f2, 0(r1)
            fadd f1, f1, f2
            addi r1, r1, 4
            addi r2, r2, -1
            bne r2, r0, fill
            cvtws r4, f1
            li r10, 0
            add r11, r4, r0
            syscall
        buf:
            .space 96
        ";
        let osm = run_osm(src);
        let port = run_port(src);
        assert_eq!(port.exit_code, osm.exit_code);
        let diff = (port.cycles as f64 - osm.cycles as f64).abs() / osm.cycles as f64;
        assert!(
            diff <= 0.03,
            "timing differs by {:.2}% (osm {}, port {})",
            diff * 100.0,
            osm.cycles,
            port.cycles
        );
    }

    #[test]
    fn kernel_pays_delta_overhead() {
        let p = assemble(SUM_LOOP, 0x1000).unwrap();
        let mut sim = PpcPortSim::new(PpcConfig::paper(), &p);
        sim.run_to_halt(1_000_000);
        let stats = sim.kernel_stats();
        // Port communication costs multiple delta iterations per cycle.
        assert!(stats.delta_cycles >= 2 * stats.cycles);
        assert!(sim.module_count() >= 9);
    }
}
