//! Branch prediction hardware: a 2-bit-counter branch history table.
//!
//! The PPC 750 predicts conditional branches with a 512-entry BHT and caches
//! targets in a branch target instruction cache (BTIC). In this model
//! direct targets are computed at fetch (standing in for the BTIC), so only
//! the direction predictor carries state.

use osm_core::{ByteReader, ByteWriter};

/// A table of 2-bit saturating counters indexed by the instruction address.
#[derive(Debug, Clone)]
pub struct Bht {
    counters: Vec<u8>,
    mask: usize,
    /// Lookups performed.
    pub lookups: u64,
    /// Training updates performed.
    pub updates: u64,
}

impl Bht {
    /// Creates a BHT with `entries` counters (power of two), initialized to
    /// weakly-not-taken.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BHT entries must be a power of two");
        Bht {
            counters: vec![1; entries],
            mask: entries - 1,
            lookups: 0,
            updates: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&mut self, pc: u32) -> bool {
        self.lookups += 1;
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the counter with the actual direction.
    pub fn train(&mut self, pc: u32, taken: bool) {
        self.updates += 1;
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Serializes the counters and statistics (table size is configuration
    /// and is excluded — the bytes restore only into an equally-sized BHT).
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.counters.len() as u32);
        for &c in &self.counters {
            w.put_u8(c);
        }
        w.put_u64(self.lookups);
        w.put_u64(self.updates);
        w.into_bytes()
    }

    /// Restores state written by [`Bht::export_state`]. Returns `false` —
    /// leaving `self` untouched — on truncation, trailing garbage, a size
    /// mismatch, or an out-of-range counter value.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = ByteReader::new(bytes);
        let Some(n) = r.take_u32() else { return false };
        if n as usize != self.counters.len() {
            return false;
        }
        let mut counters = Vec::with_capacity(self.counters.len());
        for _ in 0..n {
            let Some(c) = r.take_u8() else { return false };
            if c > 3 {
                return false;
            }
            counters.push(c);
        }
        let (Some(lookups), Some(updates)) = (r.take_u64(), r.take_u64()) else {
            return false;
        };
        if !r.is_done() {
            return false;
        }
        self.counters = counters;
        self.lookups = lookups;
        self.updates = updates;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_and_flip() {
        let mut bht = Bht::new(16);
        let pc = 0x1000;
        assert!(!bht.predict(pc)); // weakly not-taken
        bht.train(pc, true);
        assert!(bht.predict(pc)); // counter 2
        bht.train(pc, true);
        bht.train(pc, true); // saturates at 3
        bht.train(pc, false);
        assert!(bht.predict(pc)); // 2: still taken
        bht.train(pc, false);
        bht.train(pc, false);
        assert!(!bht.predict(pc));
        assert_eq!(bht.updates, 6);
    }

    #[test]
    fn distinct_pcs_map_to_distinct_counters() {
        let mut bht = Bht::new(16);
        bht.train(0x1000, true);
        bht.train(0x1000, true);
        assert!(bht.predict(0x1000));
        assert!(!bht.predict(0x1004));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bht::new(10);
    }
}
