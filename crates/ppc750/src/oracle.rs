//! The lock-step functional oracle.
//!
//! The paper built its micro-architecture models "based on existing ISSs"
//! (§5). In the out-of-order model this takes the classic oracle form: the
//! functional engine executes each *right-path* instruction at fetch time,
//! supplying the timing model with the decoded instruction, the actual
//! control-flow outcome (so mispredictions are known when the branch
//! resolves) and the memory address (for D-cache timing). Wrong-path
//! operations never touch the oracle — they exist only in the timing model.

use minirisc::{
    decode, effective_address, execute, CpuState, Instr, Memory, Outcome, Program, Reg,
    SparseMemory,
};
use osm_core::{ByteReader, ByteWriter};

/// Everything the timing model needs to know about one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleStep {
    /// Fetch address.
    pub pc: u32,
    /// Decoded instruction.
    pub instr: Instr,
    /// Actual next PC.
    pub next_pc: u32,
    /// True if control transferred (next_pc != pc + 4).
    pub taken: bool,
    /// Effective address for memory operations.
    pub mem_addr: Option<u32>,
    /// True for `halt` / exit-syscall (ends the program at retire).
    pub is_halting: bool,
}

/// The functional execution oracle.
///
/// `Clone` captures the full functional state by value — required for
/// machine checkpointing (the cloned oracle must not observe instructions
/// executed after the checkpoint).
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Architectural state (authoritative).
    pub cpu: CpuState,
    /// Functional memory.
    pub mem: SparseMemory,
    /// True once the halting instruction executed.
    pub halted: bool,
    /// Exit code.
    pub exit_code: u32,
    /// Output bytes (committed in program order — right-path only).
    pub output: Vec<u8>,
    /// First anomaly (undecodable right-path instruction, unknown syscall).
    pub error: Option<String>,
    /// Instructions executed.
    pub executed: u64,
}

impl Oracle {
    /// Loads `program` and prepares to execute from its entry.
    pub fn new(program: &Program) -> Self {
        let mut mem = SparseMemory::new();
        program.load_into(&mut mem);
        Oracle {
            cpu: CpuState::new(program.entry),
            mem,
            halted: false,
            exit_code: 0,
            output: Vec::new(),
            error: None,
            executed: 0,
        }
    }

    /// The PC of the next instruction the oracle will execute.
    pub fn next_pc(&self) -> u32 {
        self.cpu.pc
    }

    /// Executes one instruction, returning its record.
    ///
    /// # Panics
    /// Panics if called after the oracle halted (the timing model's fetch
    /// gate must prevent this).
    pub fn step(&mut self) -> OracleStep {
        assert!(!self.halted, "oracle stepped after halt");
        let pc = self.cpu.pc;
        let word = self.mem.read_u32(pc);
        let instr = match decode(word) {
            Ok(i) => i,
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(format!("at {pc:#010x}: {e}"));
                }
                // An undecodable right-path instruction halts the machine.
                self.halted = true;
                return OracleStep {
                    pc,
                    instr: Instr::Halt,
                    next_pc: pc.wrapping_add(4),
                    taken: false,
                    mem_addr: None,
                    is_halting: true,
                };
            }
        };
        let mem_addr = effective_address(instr, &self.cpu);
        let outcome = execute(instr, &mut self.cpu, &mut self.mem);
        let mut is_halting = false;
        let next_pc = match outcome {
            Outcome::Next => pc.wrapping_add(4),
            Outcome::Taken(t) => t,
            Outcome::Halt => {
                is_halting = true;
                pc.wrapping_add(4)
            }
            Outcome::Syscall => {
                let nr = self.cpu.gpr(Reg(10));
                let arg = self.cpu.gpr(Reg(11));
                match nr {
                    minirisc::syscalls::EXIT => {
                        is_halting = true;
                        self.exit_code = arg;
                    }
                    minirisc::syscalls::PUTCHAR => self.output.push(arg as u8),
                    minirisc::syscalls::PUTUINT => {
                        self.output.extend_from_slice(arg.to_string().as_bytes())
                    }
                    other => {
                        if self.error.is_none() {
                            self.error = Some(format!("unknown syscall {other} at {pc:#010x}"));
                        }
                        is_halting = true;
                    }
                }
                pc.wrapping_add(4)
            }
        };
        self.cpu.pc = next_pc;
        self.halted = is_halting;
        self.executed += 1;
        OracleStep {
            pc,
            instr,
            next_pc,
            taken: next_pc != pc.wrapping_add(4),
            mem_addr,
            is_halting,
        }
    }

    /// Serializes the full functional state (architectural registers,
    /// memory, halt/exit/output/error, executed count).
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&self.cpu.export_state());
        w.put_bytes(&self.mem.export_state());
        w.put_bool(self.halted);
        w.put_u32(self.exit_code);
        w.put_bytes(&self.output);
        match &self.error {
            None => w.put_bool(false),
            Some(e) => {
                w.put_bool(true);
                w.put_str(e);
            }
        }
        w.put_u64(self.executed);
        w.into_bytes()
    }

    /// Restores state written by [`Oracle::export_state`]. All-or-nothing:
    /// returns `false` leaving `self` untouched on any damage.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = ByteReader::new(bytes);
        let mut staged = self.clone();
        let Some(cpu) = r.take_bytes() else { return false };
        if !staged.cpu.import_state(cpu) {
            return false;
        }
        let Some(mem) = r.take_bytes() else { return false };
        if !staged.mem.import_state(mem) {
            return false;
        }
        let Some(halted) = r.take_bool() else { return false };
        let Some(exit_code) = r.take_u32() else { return false };
        let Some(output) = r.take_bytes() else { return false };
        let error = match r.take_bool() {
            Some(false) => None,
            Some(true) => match r.take_str() {
                Some(e) => Some(e.to_owned()),
                None => return false,
            },
            None => return false,
        };
        let Some(executed) = r.take_u64() else { return false };
        if !r.is_done() {
            return false;
        }
        staged.halted = halted;
        staged.exit_code = exit_code;
        staged.output = output.to_vec();
        staged.error = error;
        staged.executed = executed;
        *self = staged;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::assemble;

    #[test]
    fn steps_through_a_branching_program() {
        let p = assemble(
            "
            li r1, 2
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        ",
            0,
        )
        .unwrap();
        let mut o = Oracle::new(&p);
        let s = o.step();
        assert_eq!(s.pc, 0);
        assert!(!s.taken);
        let s = o.step(); // addi
        assert!(!s.taken);
        let s = o.step(); // bne taken
        assert!(s.taken);
        assert_eq!(s.next_pc, p.symbol("loop").unwrap());
        o.step(); // addi
        let s = o.step(); // bne not taken
        assert!(!s.taken);
        let s = o.step(); // halt
        assert!(s.is_halting);
        assert!(o.halted);
        assert_eq!(o.executed, 6);
    }

    #[test]
    fn memory_ops_report_addresses() {
        let p = assemble("la r1, d\nlw r2, 0(r1)\nhalt\nd:\n.word 5\n", 0).unwrap();
        let mut o = Oracle::new(&p);
        o.step();
        o.step(); // ori half of la
        let s = o.step(); // lw
        assert_eq!(s.mem_addr, Some(p.symbol("d").unwrap()));
    }

    #[test]
    fn undecodable_becomes_halting() {
        let mut p = assemble("nop\n", 0).unwrap();
        p.words.push(0xFF00_0000);
        let mut o = Oracle::new(&p);
        o.step();
        let s = o.step();
        assert!(s.is_halting);
        assert!(o.error.is_some());
    }

    #[test]
    #[should_panic(expected = "after halt")]
    fn stepping_after_halt_panics() {
        let p = assemble("halt\n", 0).unwrap();
        let mut o = Oracle::new(&p);
        o.step();
        o.step();
    }
}
