//! Register renaming and result-broadcast token managers.
//!
//! The PPC 750 keeps architectural register files plus rename buffers; the
//! paper models them as TMI-enabled modules (§5.2). Two managers cooperate:
//!
//! * [`RenameFile`] — the rename map. Each architectural register carries a
//!   stack of in-flight writes (bounded by the rename-buffer counting
//!   pools). Dispatch-time *value inquiries* succeed when the newest write
//!   is complete (result sits in a rename buffer) or no write is in flight.
//! * [`ResultBus`] — completion broadcasting by *operation sequence number*.
//!   An operation parked in a reservation station captured the sequence
//!   numbers of its unready producers at dispatch; its issue edge inquires
//!   this manager until those producers have broadcast.

use osm_core::{
    ByteReader, ByteWriter, ManagerSnapshot, OsmId, Snapshot, Token, TokenIdent, TokenManager,
};
use std::any::Any;
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Byte-codec kind tag for [`RenameFile`] snapshots (rename **m**ap).
const KIND_RENAME_FILE: u8 = b'M';
/// Byte-codec kind tag for [`ResultBus`] snapshots.
const KIND_RESULT_BUS: u8 = b'B';

/// One in-flight write to an architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WriteEntry {
    osm: OsmId,
    seq: u64,
    ready: bool,
}

/// The rename map manager.
#[derive(Debug)]
pub struct RenameFile {
    name: String,
    writes: Vec<VecDeque<WriteEntry>>,
}

impl RenameFile {
    /// Creates a rename map over `nregs` (flat-indexed) registers.
    pub fn new(name: impl Into<String>, nregs: usize) -> Self {
        RenameFile {
            name: name.into(),
            writes: (0..nregs).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Value-token identifier of register `r` (for dispatch inquiries).
    pub fn value_ident(r: usize) -> TokenIdent {
        TokenIdent(r as u64)
    }

    /// Records a new in-flight write at dispatch (program order).
    pub fn begin_write(&mut self, r: usize, osm: OsmId, seq: u64) {
        self.writes[r].push_back(WriteEntry {
            osm,
            seq,
            ready: false,
        });
    }

    /// Marks the in-flight write `seq` to `r` complete (result available in
    /// a rename buffer and on the bypass).
    pub fn complete_write(&mut self, r: usize, seq: u64) {
        if let Some(e) = self.writes[r].iter_mut().find(|e| e.seq == seq) {
            e.ready = true;
        }
    }

    /// Retires the *oldest* in-flight write (result moves to the
    /// architectural file, the rename buffer frees).
    pub fn retire_write(&mut self, r: usize, seq: u64) {
        debug_assert_eq!(self.writes[r].front().map(|e| e.seq), Some(seq));
        self.writes[r].pop_front();
    }

    /// Removes a squashed (wrong-path) write.
    pub fn abort_write(&mut self, r: usize, seq: u64) {
        self.writes[r].retain(|e| e.seq != seq);
    }

    /// The newest unready producer of `r`, if any — what a dispatching
    /// consumer must wait for.
    pub fn pending_producer(&self, r: usize) -> Option<u64> {
        self.writes[r].back().filter(|e| !e.ready).map(|e| e.seq)
    }

    /// Number of in-flight writes to `r`.
    pub fn depth(&self, r: usize) -> usize {
        self.writes[r].len()
    }
}

impl TokenManager for RenameFile {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare_allocate(&mut self, _osm: OsmId, _ident: TokenIdent) -> Option<Token> {
        None // rename buffer capacity is modeled by counting pools
    }

    fn inquire(&self, osm: OsmId, ident: TokenIdent) -> bool {
        let r = ident.0 as usize;
        match self.writes.get(r).and_then(|w| w.back()) {
            None => true,
            Some(e) => e.ready || e.osm == osm,
        }
    }

    fn prepare_release(&mut self, _osm: OsmId, _token: Token) -> bool {
        false
    }

    fn commit_allocate(&mut self, _osm: OsmId, _token: Token) {}
    fn abort_allocate(&mut self, _osm: OsmId, _token: Token) {}
    fn commit_release(&mut self, _osm: OsmId, _token: Token) {}
    fn abort_release(&mut self, _osm: OsmId, _token: Token) {}
    fn discard(&mut self, _osm: OsmId, _token: Token) {}

    fn owner_of(&self, ident: TokenIdent) -> Option<OsmId> {
        self.writes
            .get(ident.0 as usize)
            .and_then(|w| w.back())
            .map(|e| e.osm)
    }

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        Snapshot::restore(self, snap)
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<RenameFileState>()?;
        let mut w = ByteWriter::new();
        w.put_u8(KIND_RENAME_FILE);
        w.put_u32(state.writes.len() as u32);
        for stack in &state.writes {
            w.put_u32(stack.len() as u32);
            for e in stack {
                w.put_u32(e.osm.0);
                w.put_u64(e.seq);
                w.put_bool(e.ready);
            }
        }
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = ByteReader::new(bytes);
        if r.take_u8()? != KIND_RENAME_FILE {
            return None;
        }
        let nregs = r.take_u32()? as usize;
        let mut writes = Vec::with_capacity(nregs.min(1 << 20));
        for _ in 0..nregs {
            let depth = r.take_u32()? as usize;
            let mut stack = VecDeque::with_capacity(depth.min(1 << 20));
            for _ in 0..depth {
                let osm = OsmId(r.take_u32()?);
                let seq = r.take_u64()?;
                let ready = r.take_bool()?;
                stack.push_back(WriteEntry { osm, seq, ready });
            }
            writes.push(stack);
        }
        r.is_done()
            .then(|| ManagerSnapshot::of(RenameFileState { writes }))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Snapshot payload for [`RenameFile`]: the per-register write stacks.
#[derive(Debug, Clone)]
struct RenameFileState {
    writes: Vec<VecDeque<WriteEntry>>,
}

impl Snapshot for RenameFile {
    fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot::of(RenameFileState {
            writes: self.writes.clone(),
        })
    }

    fn restore(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<RenameFileState>() else {
            return false;
        };
        if state.writes.len() != self.writes.len() {
            return false;
        }
        self.writes.clone_from(&state.writes);
        true
    }
}

/// The completion/result-broadcast manager.
#[derive(Debug)]
pub struct ResultBus {
    name: String,
    /// All sequence numbers below this are architecturally complete.
    floor: u64,
    done: BTreeSet<u64>,
}

impl ResultBus {
    /// Creates an empty bus.
    pub fn new(name: impl Into<String>) -> Self {
        ResultBus {
            name: name.into(),
            floor: 0,
            done: BTreeSet::new(),
        }
    }

    /// Identifier for waiting on producer `seq`.
    pub fn seq_ident(seq: u64) -> TokenIdent {
        TokenIdent(seq)
    }

    /// Broadcasts completion of `seq`.
    pub fn complete(&mut self, seq: u64) {
        self.done.insert(seq);
    }

    /// Raises the floor after in-order retirement up to (excluding) `seq`.
    pub fn retire_up_to(&mut self, seq: u64) {
        self.floor = self.floor.max(seq);
        let keep = self.done.split_off(&seq);
        self.done = keep;
    }

    /// Drops broadcasts above `seq` (squash: their numbers will be reused).
    pub fn squash_above(&mut self, seq: u64) {
        self.done = self.done.iter().copied().filter(|&s| s <= seq).collect();
    }

    /// True if `seq`'s result is available.
    pub fn is_done(&self, seq: u64) -> bool {
        seq < self.floor || self.done.contains(&seq)
    }
}

impl TokenManager for ResultBus {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare_allocate(&mut self, _osm: OsmId, _ident: TokenIdent) -> Option<Token> {
        None
    }

    fn inquire(&self, _osm: OsmId, ident: TokenIdent) -> bool {
        self.is_done(ident.0)
    }

    fn prepare_release(&mut self, _osm: OsmId, _token: Token) -> bool {
        false
    }

    fn commit_allocate(&mut self, _osm: OsmId, _token: Token) {}
    fn abort_allocate(&mut self, _osm: OsmId, _token: Token) {}
    fn commit_release(&mut self, _osm: OsmId, _token: Token) {}
    fn abort_release(&mut self, _osm: OsmId, _token: Token) {}
    fn discard(&mut self, _osm: OsmId, _token: Token) {}

    fn snapshot_state(&self) -> Option<ManagerSnapshot> {
        Some(Snapshot::snapshot(self))
    }

    fn restore_state(&mut self, snap: &ManagerSnapshot) -> bool {
        Snapshot::restore(self, snap)
    }

    fn encode_snapshot(&self, snap: &ManagerSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<ResultBusState>()?;
        let mut w = ByteWriter::new();
        w.put_u8(KIND_RESULT_BUS);
        w.put_u64(state.floor);
        w.put_u32(state.done.len() as u32);
        for &seq in &state.done {
            w.put_u64(seq);
        }
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<ManagerSnapshot> {
        let mut r = ByteReader::new(bytes);
        if r.take_u8()? != KIND_RESULT_BUS {
            return None;
        }
        let floor = r.take_u64()?;
        let n = r.take_u32()?;
        let mut done = BTreeSet::new();
        for _ in 0..n {
            done.insert(r.take_u64()?);
        }
        r.is_done()
            .then(|| ManagerSnapshot::of(ResultBusState { floor, done }))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Snapshot payload for [`ResultBus`]: retirement floor plus live broadcasts.
#[derive(Debug, Clone)]
struct ResultBusState {
    floor: u64,
    done: BTreeSet<u64>,
}

impl Snapshot for ResultBus {
    fn snapshot(&self) -> ManagerSnapshot {
        ManagerSnapshot::of(ResultBusState {
            floor: self.floor,
            done: self.done.clone(),
        })
    }

    fn restore(&mut self, snap: &ManagerSnapshot) -> bool {
        let Some(state) = snap.downcast::<ResultBusState>() else {
            return false;
        };
        self.floor = state.floor;
        self.done.clone_from(&state.done);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_stack_tracks_newest_writer() {
        let mut rf = RenameFile::new("gpr", 8);
        assert!(rf.inquire(OsmId(9), RenameFile::value_ident(3)));
        rf.begin_write(3, OsmId(1), 10);
        assert!(!rf.inquire(OsmId(9), RenameFile::value_ident(3)));
        assert_eq!(rf.pending_producer(3), Some(10));
        // A second (newer) writer renames over it.
        rf.begin_write(3, OsmId(2), 11);
        assert_eq!(rf.pending_producer(3), Some(11));
        rf.complete_write(3, 11);
        assert!(rf.inquire(OsmId(9), RenameFile::value_ident(3)));
        assert_eq!(rf.pending_producer(3), None);
        // In-order retirement pops the oldest.
        rf.retire_write(3, 10);
        assert_eq!(rf.depth(3), 1);
        rf.retire_write(3, 11);
        assert_eq!(rf.depth(3), 0);
    }

    #[test]
    fn rename_own_write_does_not_block_self() {
        let mut rf = RenameFile::new("gpr", 8);
        rf.begin_write(2, OsmId(5), 1);
        assert!(rf.inquire(OsmId(5), RenameFile::value_ident(2)));
        assert!(!rf.inquire(OsmId(6), RenameFile::value_ident(2)));
    }

    #[test]
    fn rename_abort_removes_phantom_write() {
        let mut rf = RenameFile::new("gpr", 8);
        rf.begin_write(1, OsmId(1), 5);
        rf.begin_write(1, OsmId(2), 6); // phantom
        rf.abort_write(1, 6);
        assert_eq!(rf.pending_producer(1), Some(5));
        rf.complete_write(1, 5);
        assert!(rf.inquire(OsmId(9), RenameFile::value_ident(1)));
    }

    #[test]
    fn result_bus_floor_and_broadcasts() {
        let mut bus = ResultBus::new("bus");
        assert!(!bus.is_done(4));
        bus.complete(4);
        assert!(bus.is_done(4));
        bus.retire_up_to(5);
        assert!(bus.is_done(4)); // below floor
        assert!(!bus.is_done(6));
        bus.complete(7);
        bus.squash_above(6);
        assert!(!bus.is_done(7));
    }

    #[test]
    fn result_bus_inquire_matches_is_done() {
        let mut bus = ResultBus::new("bus");
        bus.complete(3);
        assert!(bus.inquire(OsmId(0), ResultBus::seq_ident(3)));
        assert!(!bus.inquire(OsmId(0), ResultBus::seq_ident(9)));
    }

    #[test]
    fn rename_snapshot_roundtrip() {
        let mut rf = RenameFile::new("gpr", 8);
        rf.begin_write(3, OsmId(1), 10);
        rf.begin_write(3, OsmId(2), 11);
        rf.complete_write(3, 11);
        let snap = Snapshot::snapshot(&rf);
        rf.retire_write(3, 10);
        rf.abort_write(3, 11);
        assert_eq!(rf.depth(3), 0);
        assert!(Snapshot::restore(&mut rf, &snap));
        assert_eq!(rf.depth(3), 2);
        assert_eq!(rf.pending_producer(3), None); // 11 was complete
        // Wrong register count is refused.
        let mut other = RenameFile::new("gpr", 4);
        assert!(!Snapshot::restore(&mut other, &snap));
    }

    #[test]
    fn rename_byte_codec_roundtrip() {
        let mut rf = RenameFile::new("gpr", 8);
        rf.begin_write(3, OsmId(1), 10);
        rf.begin_write(3, OsmId(2), 11);
        rf.complete_write(3, 11);
        rf.begin_write(5, OsmId(4), 12);
        let snap = Snapshot::snapshot(&rf);
        let bytes = rf.encode_snapshot(&snap).unwrap();
        let decoded = rf.decode_snapshot(&bytes).unwrap();
        let mut fresh = RenameFile::new("gpr", 8);
        assert!(Snapshot::restore(&mut fresh, &decoded));
        assert_eq!(fresh.depth(3), 2);
        assert_eq!(fresh.depth(5), 1);
        assert_eq!(fresh.pending_producer(3), None); // 11 was complete
        assert_eq!(fresh.pending_producer(5), Some(12));
        // Truncation and a wrong kind byte are rejected.
        assert!(rf.decode_snapshot(&bytes[..bytes.len() - 1]).is_none());
        let mut wrong = bytes.clone();
        wrong[0] = KIND_RESULT_BUS;
        assert!(rf.decode_snapshot(&wrong).is_none());
    }

    #[test]
    fn result_bus_byte_codec_roundtrip() {
        let mut bus = ResultBus::new("bus");
        bus.complete(4);
        bus.complete(9);
        bus.retire_up_to(3);
        let snap = Snapshot::snapshot(&bus);
        let bytes = bus.encode_snapshot(&snap).unwrap();
        let decoded = bus.decode_snapshot(&bytes).unwrap();
        let mut fresh = ResultBus::new("bus");
        assert!(Snapshot::restore(&mut fresh, &decoded));
        assert!(fresh.is_done(2)); // below floor
        assert!(fresh.is_done(4));
        assert!(fresh.is_done(9));
        assert!(!fresh.is_done(7));
        assert!(bus.decode_snapshot(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn result_bus_snapshot_roundtrip() {
        let mut bus = ResultBus::new("bus");
        bus.complete(4);
        bus.retire_up_to(3);
        let snap = Snapshot::snapshot(&bus);
        bus.complete(7);
        bus.retire_up_to(8);
        assert!(Snapshot::restore(&mut bus, &snap));
        assert!(bus.is_done(2)); // below restored floor
        assert!(bus.is_done(4));
        assert!(!bus.is_done(7));
        // Foreign snapshot type is refused.
        assert!(!Snapshot::restore(&mut bus, &ManagerSnapshot::of(0u8)));
    }
}
