//! Model-diff debugging harness (all `#[ignore]`d): cycle-by-cycle
//! comparison of the OSM and port/signal PPC-750 models, plus the
//! micro-program bisection suite that located the three cross-paradigm
//! timing discrepancies documented in `EXPERIMENTS.md`. Run with
//! `cargo test -p ppc750 --test diag -- --ignored --nocapture`.

use minirisc::assemble;
use ppc750::{PpcConfig, PpcOsmSim, PpcPortSim};
use workloads::specint_scaled;

#[test]
#[ignore]
fn alu11_dump() {
    let instrs: Vec<String> = (0..11).map(|k| format!("addi r{}, r0, {}", 2 + k, k + 1)).collect();
    let src = format!("li r1, 30\nloop:\n{}\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n", instrs.join("\n"));
    let p = assemble(&src, 0x1000).unwrap();
    let mut osm = PpcOsmSim::new(PpcConfig::paper(), &p);
    let mut port = PpcPortSim::new(PpcConfig::paper(), &p);
    let mut log: Vec<String> = Vec::new();
    let mut first_div: Option<usize> = None;
    for cycle in 0..400u64 {
        let o = osm.result();
        let q = port.result();
        log.push(format!("c{cycle:3} OSM ret={} {} | PORT ret={} {}", o.retired, osm.debug_state(), q.retired, port.debug_state()));
        if first_div.is_none() && o.retired != q.retired {
            first_div = Some(log.len() - 1);
        }
        if osm.machine().shared.halted {
            break;
        }
        osm.machine_mut().step().unwrap();
        port.run_to_halt(cycle + 1);
    }
    if let Some(d) = first_div {
        for line in &log[d.saturating_sub(8)..(d + 4).min(log.len())] {
            println!("{line}");
        }
    } else {
        println!("no divergence");
    }
}

#[test]
#[ignore]
fn micro_bisect() {
    let cases: &[(&str, &str)] = &[
        ("store_loop", "li r1, 50\nla r2, buf\nloop:\nsw r1, 0(r2)\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("mul_loop", "li r1, 50\nloop:\nmul r3, r1, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("la_loop", "li r1, 50\nloop:\nla r2, buf\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("lw_chain", "li r1, 50\nla r2, buf\nsw r2, 0(r2)\nloop:\nlw r2, 0(r2)\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("mul_store", "li r1, 50\nla r2, buf\nloop:\nmul r3, r1, r1\nsw r3, 0(r2)\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("two_store", "li r1, 50\nla r2, buf\nloop:\nsw r1, 0(r2)\nsw r1, 4(r2)\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("alu_only", "li r1, 50\nloop:\nadd r3, r1, r1\nxor r4, r3, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu02", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu03", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu04", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu05", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu06", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r7, r0, 6\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu08", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r7, r0, 6\naddi r8, r0, 7\naddi r9, r0, 8\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu10", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r7, r0, 6\naddi r8, r0, 7\naddi r9, r0, 8\naddi r10, r0, 9\naddi r11, r0, 10\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu11", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r7, r0, 6\naddi r8, r0, 7\naddi r9, r0, 8\naddi r10, r0, 9\naddi r11, r0, 10\naddi r12, r0, 11\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu12", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r7, r0, 6\naddi r8, r0, 7\naddi r9, r0, 8\naddi r10, r0, 9\naddi r11, r0, 10\naddi r12, r0, 11\naddi r13, r0, 12\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu13", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r7, r0, 6\naddi r8, r0, 7\naddi r9, r0, 8\naddi r10, r0, 9\naddi r11, r0, 10\naddi r12, r0, 11\naddi r13, r0, 12\naddi r14, r0, 13\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("alu14", "li r1, 30\nloop:\naddi r2, r0, 1\naddi r3, r0, 2\naddi r4, r0, 3\naddi r5, r0, 4\naddi r6, r0, 5\naddi r7, r0, 6\naddi r8, r0, 7\naddi r9, r0, 8\naddi r12, r0, 9\naddi r13, r0, 10\naddi r14, r0, 11\naddi r15, r0, 12\naddi r16, r0, 13\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n"),
        ("mul_dep_store", "li r1, 30\nla r2, buf\nloop:\nmul r6, r1, r1\nsrli r6, r6, 4\nsw r6, 0(r2)\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("dep_chain_store2", "li r1, 30\nla r2, buf\nloop:\naddi r7, r1, 7\nandi r7, r7, 15\nslli r7, r7, 3\nadd r7, r7, r2\nsw r7, 4(r2)\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("build_nomul", "li r1, 30\nla r2, buf\nloop:\nli r5, 40503\nsrli r6, r5, 4\nsw r6, 0(r2)\naddi r7, r1, 7\nandi r7, r7, 15\nslli r7, r7, 3\nla r8, buf\nadd r7, r7, r8\nsw r7, 4(r2)\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\nbuf:\n.space 8\n"),
        ("build_verbatim", "
            la   r2, nodes
            li   r3, 16
            li   r4, 0
        build:
            li   r5, 40503
            mul  r6, r4, r5
            srli r6, r6, 4
            sw   r6, 0(r2)
            addi r7, r4, 7
            andi r7, r7, 15
            slli r7, r7, 3
            la   r8, nodes
            add  r7, r7, r8
            sw   r7, 4(r2)
            addi r2, r2, 8
            addi r4, r4, 1
            bne  r4, r3, build
            halt
        nodes:
            .space 128
        "),
        ("chase_verbatim", "
            la r9, nodes
            la r2, nodes
            li r3, 16
        init:
            sw r2, 4(r2)
            addi r2, r2, 8
            addi r3, r3, -1
            bne r3, r0, init
            li r1, 60
            li r20, 0
        chase:
            lw   r12, 0(r9)
            lw   r9, 4(r9)
            xor  r20, r20, r12
            slli r13, r20, 3
            srli r14, r20, 2
            add  r20, r13, r14
            andi r15, r12, 3
            beq  r15, r0, b0
            andi r16, r12, 4
            bne  r16, r0, b1
            addi r20, r20, 5
            j    bend
        b1:
            addi r20, r20, 7
            j    bend
        b0:
            addi r20, r20, 11
        bend:
            addi r1, r1, -1
            bne  r1, r0, chase
            halt
        nodes:
            .space 128
        "),
    ];
    for (name, src) in cases {
        let p = assemble(src, 0x1000).unwrap();
        let mut osm = PpcOsmSim::new(PpcConfig::paper(), &p);
        let o = osm.run_to_halt(1_000_000).unwrap();
        let mut port = PpcPortSim::new(PpcConfig::paper(), &p);
        let q = port.run_to_halt(1_000_000);
        println!("{name:10} osm={} port={} diff={}", o.cycles, q.cycles, q.cycles as i64 - o.cycles as i64);
    }
}

#[test]
#[ignore]
fn diverge_specint() {
    let p = specint_scaled(1).program();
    let mut osm = PpcOsmSim::new(PpcConfig::paper(), &p);
    let mut port = PpcPortSim::new(PpcConfig::paper(), &p);
    let mut last = (0u64, 0u64);
    for cycle in 0..4000u64 {
        let o = osm.result();
        let q = port.result();
        if (o.retired, q.retired) != last {
            println!(
                "c{cycle:4} osm(ret={} sq={} mp={}) port(ret={} sq={} mp={}) lag={}",
                o.retired, o.squashed, o.mispredicts, q.retired, q.squashed, q.mispredicts,
                o.retired as i64 - q.retired as i64
            );
            last = (o.retired, q.retired);
        }
        if osm.machine().shared.halted {
            break;
        }
        osm.machine_mut().step().unwrap();
        port.run_to_halt(cycle + 1);
    }
}

#[test]
#[ignore]
fn diverge_point() {
    let src = "
        li r1, 60
        li r3, 0
    loop:
        andi r2, r1, 1
        beq r2, r0, even
        addi r3, r3, 1
    even:
        addi r1, r1, -1
        bne r1, r0, loop
        li r10, 0
        add r11, r3, r0
        syscall
    ";
    let p = assemble(src, 0x1000).unwrap();
    let mut osm = PpcOsmSim::new(PpcConfig::paper(), &p);
    let mut port = PpcPortSim::new(PpcConfig::paper(), &p);
    for cycle in 0..120u64 {
        let o = osm.result();
        let q = port.result();
        println!(
            "c{cycle:3} osm(ret={} sq={} mp={}) port(ret={} sq={} mp={})",
            o.retired, o.squashed, o.mispredicts, q.retired, q.squashed, q.mispredicts
        );
        if osm.machine().shared.halted {
            break;
        }
        osm.machine_mut().step().unwrap();
        port.run_to_halt(cycle + 1);
    }
}
