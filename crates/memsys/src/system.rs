//! The combined memory subsystem: split L1 caches, split TLBs, and a shared
//! bus/DRAM path — the hardware-layer block of Fig. 5 in the paper ("I-Cache,
//! ITLB, D-Cache, DTLB, memory bus, Memory"). It does not interact with
//! operations directly and therefore needs no TMI (paper §5.1): processor
//! models query it from their hardware layers and translate the returned
//! latencies into blocked token releases.

use crate::cache::{Cache, CacheConfig, CacheOutcome};
use crate::state::{put_bytes, StateReader};
use crate::tlb::{Tlb, TlbConfig};

/// Configuration of a [`MemSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Extra cycles of bus transfer added to every cache miss.
    pub bus_latency: u32,
}

impl MemSystemConfig {
    /// A StrongARM-like configuration: 16 KiB I/D caches, 32-entry TLBs.
    pub fn strongarm_like() -> Self {
        MemSystemConfig {
            icache: CacheConfig {
                sets: 512,
                ways: 1,
                line_bytes: 32,
                miss_penalty: 20,
            },
            dcache: CacheConfig {
                sets: 256,
                ways: 2,
                line_bytes: 32,
                miss_penalty: 20,
            },
            itlb: TlbConfig::entries32(),
            dtlb: TlbConfig::entries32(),
            bus_latency: 4,
        }
    }

    /// A PowerPC-750-like configuration: 32 KiB 8-way I/D caches.
    pub fn ppc750_like() -> Self {
        MemSystemConfig {
            icache: CacheConfig {
                sets: 128,
                ways: 8,
                line_bytes: 32,
                miss_penalty: 24,
            },
            dcache: CacheConfig {
                sets: 128,
                ways: 8,
                line_bytes: 32,
                miss_penalty: 24,
            },
            itlb: TlbConfig {
                entries: 128,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            dtlb: TlbConfig {
                entries: 128,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            bus_latency: 6,
        }
    }

    /// A tiny configuration for unit tests (fast to exercise misses).
    pub fn tiny() -> Self {
        MemSystemConfig {
            icache: CacheConfig {
                sets: 4,
                ways: 1,
                line_bytes: 16,
                miss_penalty: 10,
            },
            dcache: CacheConfig {
                sets: 4,
                ways: 1,
                line_bytes: 16,
                miss_penalty: 10,
            },
            itlb: TlbConfig {
                entries: 2,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            dtlb: TlbConfig {
                entries: 2,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            bus_latency: 2,
        }
    }
}

/// The memory subsystem timing model.
///
/// `Clone` produces a fully independent copy (tags, LRU state, statistics),
/// which is what machine checkpointing relies on: the cloned subsystem in a
/// checkpoint must not observe accesses made after the checkpoint was taken.
#[derive(Debug, Clone)]
pub struct MemSystem {
    /// Instruction cache.
    pub icache: Cache,
    /// Data cache.
    pub dcache: Cache,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    bus_latency: u32,
}

impl MemSystem {
    /// Builds the subsystem from a configuration.
    pub fn new(cfg: MemSystemConfig) -> Self {
        MemSystem {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            bus_latency: cfg.bus_latency,
        }
    }

    /// Extra cycles (beyond the pipelined hit path) to fetch the instruction
    /// at `addr`: ITLB walk + I-cache miss + bus.
    pub fn fetch_penalty(&mut self, addr: u32) -> u32 {
        let tlb = self.itlb.access(addr);
        let cache = match self.icache.access(addr) {
            CacheOutcome::Hit => 0,
            CacheOutcome::Miss { penalty } => penalty + self.bus_latency,
        };
        tlb + cache
    }

    /// Extra cycles for a data access at `addr`.
    pub fn data_penalty(&mut self, addr: u32) -> u32 {
        let tlb = self.dtlb.access(addr);
        let cache = match self.dcache.access(addr) {
            CacheOutcome::Hit => 0,
            CacheOutcome::Miss { penalty } => penalty + self.bus_latency,
        };
        tlb + cache
    }

    /// Serializes the mutable state of all four components as length-prefixed
    /// sections (I-cache, D-cache, ITLB, DTLB). The bus latency is
    /// configuration and is not included; restoring requires a subsystem of
    /// identical geometry. This is the byte form of the checkpoint-grade
    /// `Clone` this type already guarantees.
    pub fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, &self.icache.export_state());
        put_bytes(&mut out, &self.dcache.export_state());
        put_bytes(&mut out, &self.itlb.export_state());
        put_bytes(&mut out, &self.dtlb.export_state());
        out
    }

    /// Restores state written by [`MemSystem::export_state`]. All-or-nothing:
    /// on any malformed or geometry-mismatched section it returns `false`
    /// and leaves `self` completely untouched.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = StateReader::new(bytes);
        let (Some(ic), Some(dc), Some(it), Some(dt)) = (
            r.take_bytes(),
            r.take_bytes(),
            r.take_bytes(),
            r.take_bytes(),
        ) else {
            return false;
        };
        if !r.is_done() {
            return false;
        }
        let mut staged = self.clone();
        if !(staged.icache.import_state(ic)
            && staged.dcache.import_state(dc)
            && staged.itlb.import_state(it)
            && staged.dtlb.import_state(dt))
        {
            return false;
        }
        *self = staged;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_fetch_pays_tlb_cache_and_bus() {
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        // TLB walk 30 + miss 10 + bus 2.
        assert_eq!(m.fetch_penalty(0x1000), 42);
        // Warm: all hits.
        assert_eq!(m.fetch_penalty(0x1004), 0);
    }

    #[test]
    fn data_and_fetch_paths_are_split() {
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        m.fetch_penalty(0x1000);
        // Data path is still cold.
        assert_eq!(m.data_penalty(0x1000), 42);
        assert_eq!(m.data_penalty(0x1000), 0);
        assert_eq!(m.icache.stats.accesses, 1);
        assert_eq!(m.dcache.stats.accesses, 2);
    }

    #[test]
    fn clone_is_state_independent() {
        // Checkpoint semantics: a clone captures tags, LRU and stats by
        // value; later traffic on one side must not leak to the other.
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        m.fetch_penalty(0x1000);
        let snap = m.clone();
        m.fetch_penalty(0x9000); // evicting/new traffic on the original
        m.data_penalty(0x4000);
        assert_eq!(snap.icache.stats.accesses, 1);
        assert_eq!(snap.dcache.stats.accesses, 0);
        // The clone replays from the captured point: warm where the original
        // was warm at snapshot time, cold elsewhere.
        let mut replay = snap.clone();
        assert_eq!(replay.fetch_penalty(0x1000), 0);
        assert!(replay.data_penalty(0x4000) > 0);
    }

    #[test]
    fn state_bytes_equal_clone_semantics() {
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        m.fetch_penalty(0x1000);
        m.data_penalty(0x4000);
        let bytes = m.export_state();

        let mut restored = MemSystem::new(MemSystemConfig::tiny());
        assert!(restored.import_state(&bytes));
        let mut cloned = m.clone();
        // Both continuations see identical timing from here on.
        for addr in [0x1000u32, 0x1234, 0x4000, 0x9000, 0x4008] {
            assert_eq!(restored.fetch_penalty(addr), cloned.fetch_penalty(addr));
            assert_eq!(restored.data_penalty(addr), cloned.data_penalty(addr));
        }
        assert_eq!(restored.icache.stats, cloned.icache.stats);
        assert_eq!(restored.dtlb.stats, cloned.dtlb.stats);
    }

    #[test]
    fn import_is_all_or_nothing() {
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        m.fetch_penalty(0x1000);
        let bytes = m.export_state();
        let before_i = m.icache.stats;

        assert!(!m.import_state(&bytes[..bytes.len() - 3]));
        let mut long = bytes.clone();
        long.push(0);
        assert!(!m.import_state(&long));
        // Geometry mismatch in a *later* section must not commit the earlier
        // ones.
        let mut other = MemSystem::new(MemSystemConfig::strongarm_like());
        assert!(!other.import_state(&bytes));
        assert_eq!(other.icache.stats.accesses, 0);

        assert_eq!(m.icache.stats, before_i);
    }

    #[test]
    fn preset_configs_are_valid() {
        let _ = MemSystem::new(MemSystemConfig::strongarm_like());
        let _ = MemSystem::new(MemSystemConfig::ppc750_like());
        assert_eq!(MemSystemConfig::strongarm_like().icache.capacity(), 16384);
        assert_eq!(MemSystemConfig::ppc750_like().dcache.capacity(), 32768);
    }
}
