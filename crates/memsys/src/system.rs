//! The combined memory subsystem: split L1 caches, split TLBs, and a shared
//! bus/DRAM path — the hardware-layer block of Fig. 5 in the paper ("I-Cache,
//! ITLB, D-Cache, DTLB, memory bus, Memory"). It does not interact with
//! operations directly and therefore needs no TMI (paper §5.1): processor
//! models query it from their hardware layers and translate the returned
//! latencies into blocked token releases.

use crate::cache::{Cache, CacheConfig, CacheOutcome};
use crate::tlb::{Tlb, TlbConfig};

/// Configuration of a [`MemSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Extra cycles of bus transfer added to every cache miss.
    pub bus_latency: u32,
}

impl MemSystemConfig {
    /// A StrongARM-like configuration: 16 KiB I/D caches, 32-entry TLBs.
    pub fn strongarm_like() -> Self {
        MemSystemConfig {
            icache: CacheConfig {
                sets: 512,
                ways: 1,
                line_bytes: 32,
                miss_penalty: 20,
            },
            dcache: CacheConfig {
                sets: 256,
                ways: 2,
                line_bytes: 32,
                miss_penalty: 20,
            },
            itlb: TlbConfig::entries32(),
            dtlb: TlbConfig::entries32(),
            bus_latency: 4,
        }
    }

    /// A PowerPC-750-like configuration: 32 KiB 8-way I/D caches.
    pub fn ppc750_like() -> Self {
        MemSystemConfig {
            icache: CacheConfig {
                sets: 128,
                ways: 8,
                line_bytes: 32,
                miss_penalty: 24,
            },
            dcache: CacheConfig {
                sets: 128,
                ways: 8,
                line_bytes: 32,
                miss_penalty: 24,
            },
            itlb: TlbConfig {
                entries: 128,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            dtlb: TlbConfig {
                entries: 128,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            bus_latency: 6,
        }
    }

    /// A tiny configuration for unit tests (fast to exercise misses).
    pub fn tiny() -> Self {
        MemSystemConfig {
            icache: CacheConfig {
                sets: 4,
                ways: 1,
                line_bytes: 16,
                miss_penalty: 10,
            },
            dcache: CacheConfig {
                sets: 4,
                ways: 1,
                line_bytes: 16,
                miss_penalty: 10,
            },
            itlb: TlbConfig {
                entries: 2,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            dtlb: TlbConfig {
                entries: 2,
                page_bytes: 4096,
                miss_penalty: 30,
            },
            bus_latency: 2,
        }
    }
}

/// The memory subsystem timing model.
///
/// `Clone` produces a fully independent copy (tags, LRU state, statistics),
/// which is what machine checkpointing relies on: the cloned subsystem in a
/// checkpoint must not observe accesses made after the checkpoint was taken.
#[derive(Debug, Clone)]
pub struct MemSystem {
    /// Instruction cache.
    pub icache: Cache,
    /// Data cache.
    pub dcache: Cache,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    bus_latency: u32,
}

impl MemSystem {
    /// Builds the subsystem from a configuration.
    pub fn new(cfg: MemSystemConfig) -> Self {
        MemSystem {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            bus_latency: cfg.bus_latency,
        }
    }

    /// Extra cycles (beyond the pipelined hit path) to fetch the instruction
    /// at `addr`: ITLB walk + I-cache miss + bus.
    pub fn fetch_penalty(&mut self, addr: u32) -> u32 {
        let tlb = self.itlb.access(addr);
        let cache = match self.icache.access(addr) {
            CacheOutcome::Hit => 0,
            CacheOutcome::Miss { penalty } => penalty + self.bus_latency,
        };
        tlb + cache
    }

    /// Extra cycles for a data access at `addr`.
    pub fn data_penalty(&mut self, addr: u32) -> u32 {
        let tlb = self.dtlb.access(addr);
        let cache = match self.dcache.access(addr) {
            CacheOutcome::Hit => 0,
            CacheOutcome::Miss { penalty } => penalty + self.bus_latency,
        };
        tlb + cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_fetch_pays_tlb_cache_and_bus() {
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        // TLB walk 30 + miss 10 + bus 2.
        assert_eq!(m.fetch_penalty(0x1000), 42);
        // Warm: all hits.
        assert_eq!(m.fetch_penalty(0x1004), 0);
    }

    #[test]
    fn data_and_fetch_paths_are_split() {
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        m.fetch_penalty(0x1000);
        // Data path is still cold.
        assert_eq!(m.data_penalty(0x1000), 42);
        assert_eq!(m.data_penalty(0x1000), 0);
        assert_eq!(m.icache.stats.accesses, 1);
        assert_eq!(m.dcache.stats.accesses, 2);
    }

    #[test]
    fn clone_is_state_independent() {
        // Checkpoint semantics: a clone captures tags, LRU and stats by
        // value; later traffic on one side must not leak to the other.
        let mut m = MemSystem::new(MemSystemConfig::tiny());
        m.fetch_penalty(0x1000);
        let snap = m.clone();
        m.fetch_penalty(0x9000); // evicting/new traffic on the original
        m.data_penalty(0x4000);
        assert_eq!(snap.icache.stats.accesses, 1);
        assert_eq!(snap.dcache.stats.accesses, 0);
        // The clone replays from the captured point: warm where the original
        // was warm at snapshot time, cold elsewhere.
        let mut replay = snap.clone();
        assert_eq!(replay.fetch_penalty(0x1000), 0);
        assert!(replay.data_penalty(0x4000) > 0);
    }

    #[test]
    fn preset_configs_are_valid() {
        let _ = MemSystem::new(MemSystemConfig::strongarm_like());
        let _ = MemSystem::new(MemSystemConfig::ppc750_like());
        assert_eq!(MemSystemConfig::strongarm_like().icache.capacity(), 16384);
        assert_eq!(MemSystemConfig::ppc750_like().dcache.capacity(), 32768);
    }
}
