//! # memsys — memory-subsystem timing substrate
//!
//! Set-associative [`Cache`]s, fully-associative [`Tlb`]s and the combined
//! [`MemSystem`] used as the hardware layer of both processor case studies.
//! These models are *timing only*: functional data lives in the simulators'
//! sparse memories; this crate answers "how many extra cycles does this
//! access cost" and keeps hit/miss statistics.
//!
//! ```
//! use memsys::{MemSystem, MemSystemConfig};
//!
//! let mut mem = MemSystem::new(MemSystemConfig::strongarm_like());
//! let cold = mem.fetch_penalty(0x1000);
//! let warm = mem.fetch_penalty(0x1004);
//! assert!(cold > 0);
//! assert_eq!(warm, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod state;
mod system;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheOutcome, CacheStats};
pub use system::{MemSystem, MemSystemConfig};
pub use tlb::{Tlb, TlbConfig, TlbStats};
