//! A fully-associative TLB timing model with LRU replacement.
//!
//! Like the caches, the TLB models timing only: the workspace's programs run
//! identity-mapped, so a "translation" is just the page number — what matters
//! to the micro-architecture models is the hit/miss latency.

use crate::state::{put_u32, put_u64, StateReader};

/// Configuration of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: usize,
    /// Extra cycles on a miss (table walk).
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// A 32-entry, 4 KiB-page TLB with a 30-cycle walk.
    pub fn entries32() -> Self {
        TlbConfig {
            entries: 32,
            page_bytes: 4096,
            miss_penalty: 30,
        }
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translations.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (walks).
    pub misses: u64,
}

/// A fully-associative TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<(u32, u64)>, // (vpn, stamp), length <= cfg.entries
    stamp: u64,
    /// Statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    /// Panics if the page size is not a power of two or entries is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_bytes.is_power_of_two(), "page size power of two");
        assert!(cfg.entries > 0, "at least one entry");
        Tlb {
            cfg,
            entries: Vec::with_capacity(cfg.entries),
            stamp: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Translates `addr`: returns the extra latency (0 on hit).
    pub fn access(&mut self, addr: u32) -> u32 {
        let vpn = addr / self.cfg.page_bytes as u32;
        self.stamp += 1;
        self.stats.accesses += 1;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.stamp;
            self.stats.hits += 1;
            return 0;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.stamp));
        self.cfg.miss_penalty
    }

    /// Presence check without state change.
    pub fn probe(&self, addr: u32) -> bool {
        let vpn = addr / self.cfg.page_bytes as u32;
        self.entries.iter().any(|(v, _)| *v == vpn)
    }

    /// Serializes the mutable state — the entry vector *in storage order*
    /// (eviction uses `swap_remove`, so order is semantic), the stamp counter
    /// and the statistics. Geometry is excluded; see [`Tlb::import_state`].
    pub fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.entries.len() * 12 + 4 * 8);
        put_u32(&mut out, self.entries.len() as u32);
        for &(vpn, stamp) in &self.entries {
            put_u32(&mut out, vpn);
            put_u64(&mut out, stamp);
        }
        put_u64(&mut out, self.stamp);
        for v in [self.stats.accesses, self.stats.hits, self.stats.misses] {
            put_u64(&mut out, v);
        }
        out
    }

    /// Restores state written by [`Tlb::export_state`] into a TLB of the
    /// same capacity. Returns `false` — leaving `self` untouched — if the
    /// bytes are truncated, carry trailing garbage, or hold more entries
    /// than this TLB's configuration allows.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = StateReader::new(bytes);
        let Some(n) = r.take_u32() else { return false };
        if n as usize > self.cfg.entries {
            return false;
        }
        let mut entries = Vec::with_capacity(self.cfg.entries);
        for _ in 0..n {
            let (Some(vpn), Some(stamp)) = (r.take_u32(), r.take_u64()) else {
                return false;
            };
            entries.push((vpn, stamp));
        }
        let Some(stamp) = r.take_u64() else { return false };
        let (Some(accesses), Some(hits), Some(misses)) =
            (r.take_u64(), r.take_u64(), r.take_u64())
        else {
            return false;
        };
        if !r.is_done() {
            return false;
        }
        self.entries = entries;
        self.stamp = stamp;
        self.stats = TlbStats {
            accesses,
            hits,
            misses,
        };
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 30,
        })
    }

    #[test]
    fn miss_then_hit_within_page() {
        let mut t = tiny();
        assert_eq!(t.access(0x1000), 30);
        assert_eq!(t.access(0x1FFC), 0);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // refresh page 1
        t.access(0x3000); // evicts page 2
        assert!(t.probe(0x1000));
        assert!(!t.probe(0x2000));
        assert!(t.probe(0x3000));
    }

    #[test]
    fn probe_is_pure() {
        let mut t = tiny();
        t.access(0x1000);
        let stats = t.stats;
        assert!(t.probe(0x1000));
        assert_eq!(t.stats, stats);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(TlbConfig {
            entries: 0,
            page_bytes: 4096,
            miss_penalty: 1,
        });
    }

    #[test]
    fn state_round_trips_including_eviction_order() {
        let mut t = tiny();
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // refresh page 1
        let bytes = t.export_state();

        let mut fresh = tiny();
        assert!(fresh.import_state(&bytes));
        assert_eq!(fresh.stats, t.stats);
        // The restored TLB makes the same eviction decision as the original:
        // the stale page 2 goes, the refreshed page 1 stays.
        fresh.access(0x3000);
        t.access(0x3000);
        assert!(fresh.probe(0x1000) && t.probe(0x1000));
        assert!(!fresh.probe(0x2000) && !t.probe(0x2000));
    }

    #[test]
    fn import_rejects_damage_and_oversize() {
        let mut t = tiny();
        t.access(0x1000);
        let bytes = t.export_state();
        let before = t.stats;

        assert!(!t.import_state(&bytes[..bytes.len() - 2]));
        let mut long = bytes.clone();
        long.push(0);
        assert!(!t.import_state(&long));

        // More entries than this TLB can hold.
        let mut big = Tlb::new(TlbConfig {
            entries: 8,
            page_bytes: 4096,
            miss_penalty: 30,
        });
        for p in 0..5u32 {
            big.access(p << 12);
        }
        assert!(!t.import_state(&big.export_state()));

        assert_eq!(t.stats, before);
        assert!(t.probe(0x1000));
    }
}
