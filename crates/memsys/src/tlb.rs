//! A fully-associative TLB timing model with LRU replacement.
//!
//! Like the caches, the TLB models timing only: the workspace's programs run
//! identity-mapped, so a "translation" is just the page number — what matters
//! to the micro-architecture models is the hit/miss latency.

/// Configuration of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: usize,
    /// Extra cycles on a miss (table walk).
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// A 32-entry, 4 KiB-page TLB with a 30-cycle walk.
    pub fn entries32() -> Self {
        TlbConfig {
            entries: 32,
            page_bytes: 4096,
            miss_penalty: 30,
        }
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translations.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (walks).
    pub misses: u64,
}

/// A fully-associative TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<(u32, u64)>, // (vpn, stamp), length <= cfg.entries
    stamp: u64,
    /// Statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    /// Panics if the page size is not a power of two or entries is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_bytes.is_power_of_two(), "page size power of two");
        assert!(cfg.entries > 0, "at least one entry");
        Tlb {
            cfg,
            entries: Vec::with_capacity(cfg.entries),
            stamp: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Translates `addr`: returns the extra latency (0 on hit).
    pub fn access(&mut self, addr: u32) -> u32 {
        let vpn = addr / self.cfg.page_bytes as u32;
        self.stamp += 1;
        self.stats.accesses += 1;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.stamp;
            self.stats.hits += 1;
            return 0;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.stamp));
        self.cfg.miss_penalty
    }

    /// Presence check without state change.
    pub fn probe(&self, addr: u32) -> bool {
        let vpn = addr / self.cfg.page_bytes as u32;
        self.entries.iter().any(|(v, _)| *v == vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 30,
        })
    }

    #[test]
    fn miss_then_hit_within_page() {
        let mut t = tiny();
        assert_eq!(t.access(0x1000), 30);
        assert_eq!(t.access(0x1FFC), 0);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // refresh page 1
        t.access(0x3000); // evicts page 2
        assert!(t.probe(0x1000));
        assert!(!t.probe(0x2000));
        assert!(t.probe(0x3000));
    }

    #[test]
    fn probe_is_pure() {
        let mut t = tiny();
        t.access(0x1000);
        let stats = t.stats;
        assert!(t.probe(0x1000));
        assert_eq!(t.stats, stats);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(TlbConfig {
            entries: 0,
            page_bytes: 4096,
            miss_penalty: 1,
        });
    }
}
