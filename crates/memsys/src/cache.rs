//! Set-associative cache timing model with LRU replacement.
//!
//! The cache tracks tags only — functional data lives in the backing
//! [`minirisc`-style sparse memory] of whichever simulator embeds it — so
//! the same model serves instruction and data caches of every simulator in
//! the workspace, OSM-based or not.
//!
//! [`minirisc`-style sparse memory]: https://docs.rs/minirisc

use crate::state::{put_u32, put_u64, put_u8, StateReader};
use std::fmt;

/// Geometry and timing of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Extra cycles added on a miss while the line is fetched from the next
    /// level (the paper's variable-latency idiom feeds on this).
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// A small default: 16 KiB, 32-way... no — 32-byte lines, 2-way, 16 KiB.
    pub fn kb16_2way() -> Self {
        CacheConfig {
            sets: 256,
            ways: 2,
            line_bytes: 32,
            miss_penalty: 20,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    fn assert_valid(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two() && self.line_bytes >= 4,
            "line size must be a power of two >= 4"
        );
        assert!(self.ways >= 1, "at least one way");
    }
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no accesses were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    valid: bool,
    stamp: u64,
}

/// A set-associative, write-allocate cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets × ways
    stamp: u64,
    /// Statistics (public for harness reporting).
    pub stats: CacheStats,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was fetched; carries the extra latency in cycles.
    Miss {
        /// Additional cycles beyond a hit.
        penalty: u32,
    },
}

impl CacheOutcome {
    /// Extra cycles this access costs beyond a hit.
    pub fn penalty(self) -> u32 {
        match self {
            CacheOutcome::Hit => 0,
            CacheOutcome::Miss { penalty } => penalty,
        }
    }

    /// True on hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    /// Panics if the configuration is not power-of-two shaped.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.assert_valid();
        Cache {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                };
                cfg.sets * cfg.ways
            ],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr as usize / self.cfg.line_bytes;
        (line & (self.cfg.sets - 1), (line / self.cfg.sets) as u32)
    }

    /// Performs an access (read or write — write-allocate makes them alike
    /// for tag state), updating LRU and statistics.
    pub fn access(&mut self, addr: u32) -> CacheOutcome {
        let (set, tag) = self.set_and_tag(addr);
        self.stamp += 1;
        self.stats.accesses += 1;
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.stamp;
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }

        self.stats.misses += 1;
        // Victim: an invalid way, else the LRU way.
        let victim = ways
            .iter()
            .position(|l| !l.valid)
            .unwrap_or_else(|| {
                ways.iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("at least one way")
            });
        if ways[victim].valid {
            self.stats.evictions += 1;
        }
        ways[victim] = Line {
            tag,
            valid: true,
            stamp: self.stamp,
        };
        CacheOutcome::Miss {
            penalty: self.cfg.miss_penalty,
        }
    }

    /// Checks presence without changing any state.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (keeps statistics).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Serializes the mutable state — line tags/validity/LRU stamps, the
    /// stamp counter and the statistics — as a flat little-endian byte
    /// string. Geometry is configuration, not state, and is excluded: the
    /// bytes restore only into a cache of identical shape.
    pub fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.lines.len() * 13 + 5 * 8);
        put_u32(&mut out, self.lines.len() as u32);
        for l in &self.lines {
            put_u32(&mut out, l.tag);
            put_u8(&mut out, l.valid as u8);
            put_u64(&mut out, l.stamp);
        }
        put_u64(&mut out, self.stamp);
        for v in [
            self.stats.accesses,
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
        ] {
            put_u64(&mut out, v);
        }
        out
    }

    /// Restores state written by [`Cache::export_state`] into a cache of the
    /// same geometry. Returns `false` — leaving `self` untouched — if the
    /// bytes are truncated, malformed, carry trailing garbage, or were
    /// exported from a differently-shaped cache.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = StateReader::new(bytes);
        let Some(n) = r.take_u32() else { return false };
        if n as usize != self.lines.len() {
            return false;
        }
        let mut lines = Vec::with_capacity(self.lines.len());
        for _ in 0..n {
            let (Some(tag), Some(valid), Some(stamp)) =
                (r.take_u32(), r.take_u8(), r.take_u64())
            else {
                return false;
            };
            if valid > 1 {
                return false;
            }
            lines.push(Line {
                tag,
                valid: valid == 1,
                stamp,
            });
        }
        let Some(stamp) = r.take_u64() else { return false };
        let (Some(accesses), Some(hits), Some(misses), Some(evictions)) =
            (r.take_u64(), r.take_u64(), r.take_u64(), r.take_u64())
        else {
            return false;
        };
        if !r.is_done() {
            return false;
        }
        self.lines = lines;
        self.stamp = stamp;
        self.stats = CacheStats {
            accesses,
            hits,
            misses,
            evictions,
        };
        true
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB {}-way, {}B lines: {} accesses, {:.1}% hits",
            self.cfg.capacity() / 1024,
            self.cfg.ways,
            self.cfg.line_bytes,
            self.stats.accesses,
            100.0 * self.stats.hit_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize) -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways,
            line_bytes: 16,
            miss_penalty: 10,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(1);
        assert_eq!(c.access(0x100), CacheOutcome::Miss { penalty: 10 });
        assert_eq!(c.access(0x100), CacheOutcome::Hit);
        assert_eq!(c.access(0x104), CacheOutcome::Hit); // same line
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 1);
        assert!((c.stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = tiny(1);
        // 4 sets × 16B lines: addresses 0x0 and 0x40 map to set 0.
        c.access(0x00);
        c.access(0x40);
        assert!(!c.probe(0x00)); // evicted
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.access(0x00).penalty(), 10);
    }

    #[test]
    fn two_way_lru_keeps_recent() {
        let mut c = tiny(2);
        c.access(0x00); // set 0, way A
        c.access(0x40); // set 0, way B
        c.access(0x00); // touch A (now most recent)
        c.access(0x80); // evicts LRU = 0x40
        assert!(c.probe(0x00));
        assert!(!c.probe(0x40));
        assert!(c.probe(0x80));
    }

    #[test]
    fn probe_is_pure() {
        let mut c = tiny(1);
        c.access(0x0);
        let stats = c.stats;
        assert!(c.probe(0x0));
        assert!(!c.probe(0x40));
        assert_eq!(c.stats, stats);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny(2);
        c.access(0x0);
        c.flush();
        assert!(!c.probe(0x0));
        assert!(!c.access(0x0).is_hit());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 16,
            miss_penalty: 1,
        });
    }

    #[test]
    fn display_mentions_geometry() {
        let c = tiny(2);
        let s = c.to_string();
        assert!(s.contains("2-way"));
        assert!(s.contains("16B lines"));
    }

    #[test]
    fn state_round_trips_tags_lru_and_stats() {
        let mut c = tiny(2);
        c.access(0x00);
        c.access(0x40);
        c.access(0x00); // 0x00 most recent
        let bytes = c.export_state();

        let mut fresh = tiny(2);
        assert!(fresh.import_state(&bytes));
        assert_eq!(fresh.stats, c.stats);
        assert!(fresh.probe(0x00));
        assert!(fresh.probe(0x40));
        // LRU order survived: the next conflict evicts 0x40, not 0x00.
        fresh.access(0x80);
        c.access(0x80);
        assert_eq!(fresh.probe(0x00), c.probe(0x00));
        assert!(!fresh.probe(0x40));
    }

    #[test]
    fn import_rejects_damage_and_leaves_state_alone() {
        let mut c = tiny(1);
        c.access(0x100);
        let bytes = c.export_state();
        let before = c.stats;

        // Truncated.
        assert!(!c.import_state(&bytes[..bytes.len() - 1]));
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(!c.import_state(&long));
        // Non-boolean validity byte.
        let mut bad = bytes.clone();
        bad[8] = 2; // first line's `valid` flag
        assert!(!c.import_state(&bad));
        // Wrong geometry.
        let mut other = tiny(2);
        assert!(!other.import_state(&bytes));

        assert_eq!(c.stats, before);
        assert!(c.probe(0x100));
    }
}
