//! Crate-internal little-endian byte cursor used by the checkpoint
//! export/import methods of [`crate::Cache`], [`crate::Tlb`] and
//! [`crate::MemSystem`]. Kept self-contained so the timing substrate stays
//! dependency-free; the sealed outer file format lives with the simulators.

/// Forward-only read cursor; every accessor returns `None` on overrun.
#[derive(Debug)]
pub(crate) struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    pub(crate) fn take_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn take_u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn take_u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a u32-length-prefixed byte section.
    pub(crate) fn take_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.take_u32()?;
        self.take(n as usize)
    }
}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}
