//! The bundle scheduler — a miniature VLIW compiler back end.
//!
//! VLIW machines move hazard resolution from hardware to the compiler: the
//! scheduler pairs independent operations into two-slot bundles (slot 1
//! restricted to simple ALU work, as on most VLIWs), pads with NOPs where no
//! pair exists, keeps branch targets at bundle boundaries and re-targets
//! branches to bundle indices.
//!
//! Input programs are position-independent [`VliwIr`] code: branch targets
//! are instruction indices, and data lives in a separate segment the code
//! addresses absolutely (`li` of [`crate::DATA_BASE`]-relative addresses).

use minirisc::{Instr, InstrClass};
use std::collections::BTreeMap;

/// VLIW intermediate representation: straight-line instructions with
/// index-based branch targets.
#[derive(Debug, Clone, Default)]
pub struct VliwIr {
    /// The instructions. Branch/jal offsets are *overwritten* by the
    /// scheduler; use [`VliwIr::branch`]/[`VliwIr::jump`] to record targets.
    pub instrs: Vec<Instr>,
    /// `instr index -> target instr index` for control transfers.
    pub targets: BTreeMap<usize, usize>,
}

impl VliwIr {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a non-control instruction; returns its index.
    pub fn push(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    /// Appends a conditional branch to instruction index `target`.
    pub fn branch(&mut self, i: Instr, target: usize) -> usize {
        debug_assert!(matches!(i, Instr::Branch { .. }));
        let at = self.push(i);
        self.targets.insert(at, target);
        at
    }

    /// Appends an unconditional jump to instruction index `target`.
    pub fn jump(&mut self, i: Instr, target: usize) -> usize {
        debug_assert!(matches!(i, Instr::Jal { .. }));
        let at = self.push(i);
        self.targets.insert(at, target);
        at
    }
}

/// One two-slot bundle. Slot 1 is [`Instr::NOP`] when unpaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bundle {
    /// The two operation slots.
    pub slots: [Instr; 2],
}

impl Bundle {
    /// True if slot 1 carries real work.
    pub fn is_pair(&self) -> bool {
        self.slots[1] != Instr::NOP
    }
}

/// A scheduled VLIW program: bundles plus the initial data segment.
#[derive(Debug, Clone, Default)]
pub struct VliwProgram {
    /// The bundle stream; control transfers target bundle indices.
    pub bundles: Vec<Bundle>,
    /// Initial contents of the data segment (at [`crate::DATA_BASE`]).
    pub data: Vec<u32>,
    /// `bundle index -> target bundle index` for the control op in slot 0.
    pub targets: BTreeMap<usize, usize>,
}

impl VliwProgram {
    /// Static operation count (NOP padding excluded).
    pub fn op_count(&self) -> usize {
        self.bundles
            .iter()
            .map(|b| 1 + usize::from(b.is_pair()))
            .sum()
    }

    /// NOP-padding fraction (the classic VLIW code-density cost).
    pub fn nop_fraction(&self) -> f64 {
        if self.bundles.is_empty() {
            return 0.0;
        }
        let nops = self.bundles.iter().filter(|b| !b.is_pair()).count();
        nops as f64 / (2 * self.bundles.len()) as f64
    }
}

fn is_slot1_eligible(i: &Instr) -> bool {
    matches!(i.class(), InstrClass::IntAlu)
}

/// True if `b` may share a bundle with `a` placed in slot 0 (no intra-bundle
/// RAW/WAW/WAR — VLIW slots read before any slot writes, but we keep the
/// stronger independence so sequential per-slot execution is equivalent).
fn independent(a: &Instr, b: &Instr) -> bool {
    let a_dest = a.dest();
    let b_dest = b.dest();
    if a_dest.is_some() && a_dest == b_dest {
        return false; // WAW
    }
    if let Some(d) = a_dest {
        if b.sources().contains(&d) {
            return false; // RAW
        }
    }
    if let Some(d) = b_dest {
        if a.sources().contains(&d) {
            return false; // WAR (order-sensitive under sequential slots)
        }
    }
    true
}

/// Schedules `ir` into two-slot bundles with `data` as the data segment.
///
/// Greedy pairing within basic blocks: a branch target always starts a new
/// bundle, control and memory operations occupy slot 0 alone or pair with a
/// following simple ALU op, and pairs must be independent.
pub fn schedule(ir: &VliwIr, data: Vec<u32>) -> VliwProgram {
    let n = ir.instrs.len();
    // Leaders: branch targets and fall-through successors of control ops.
    let mut leader = vec![false; n.max(1)];
    if n > 0 {
        leader[0] = true;
    }
    for (&from, &to) in &ir.targets {
        if to < n {
            leader[to] = true;
        }
        if from + 1 < n {
            leader[from + 1] = true;
        }
    }

    let mut bundles = Vec::new();
    let mut instr_to_bundle = vec![0usize; n];
    let mut control_from: BTreeMap<usize, usize> = BTreeMap::new(); // bundle -> instr idx
    let mut k = 0;
    while k < n {
        let first = ir.instrs[k];
        instr_to_bundle[k] = bundles.len();
        let mut second = Instr::NOP;
        let can_pair = k + 1 < n
            && !leader[k + 1]
            && !first.is_control()
            && is_slot1_eligible(&ir.instrs[k + 1])
            && independent(&first, &ir.instrs[k + 1]);
        if can_pair {
            second = ir.instrs[k + 1];
            instr_to_bundle[k + 1] = bundles.len();
        }
        if ir.targets.contains_key(&k) {
            control_from.insert(bundles.len(), k);
        }
        bundles.push(Bundle {
            slots: [first, second],
        });
        k += if can_pair { 2 } else { 1 };
    }

    // Re-target control transfers to bundle indices.
    let mut targets = BTreeMap::new();
    for (bundle, instr_idx) in control_from {
        let target_instr = ir.targets[&instr_idx];
        let target_bundle = if target_instr < n {
            instr_to_bundle[target_instr]
        } else {
            bundles.len() // jump past the end = halt-ish
        };
        targets.insert(bundle, target_bundle);
    }

    VliwProgram {
        bundles,
        data,
        targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::{AluOp, BranchCond, Reg};

    fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
        Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(rd),
            rs1: Reg(rs1),
            imm,
        }
    }

    #[test]
    fn independent_ops_pair() {
        let mut ir = VliwIr::new();
        ir.push(addi(1, 0, 1));
        ir.push(addi(2, 0, 2));
        ir.push(addi(3, 0, 3));
        ir.push(addi(4, 0, 4));
        let p = schedule(&ir, vec![]);
        assert_eq!(p.bundles.len(), 2);
        assert!(p.bundles.iter().all(Bundle::is_pair));
        assert_eq!(p.nop_fraction(), 0.0);
        assert_eq!(p.op_count(), 4);
    }

    #[test]
    fn raw_dependence_splits_bundle() {
        let mut ir = VliwIr::new();
        ir.push(addi(1, 0, 1));
        ir.push(addi(2, 1, 1)); // reads r1
        let p = schedule(&ir, vec![]);
        assert_eq!(p.bundles.len(), 2);
        assert!(!p.bundles[0].is_pair());
        assert!(p.nop_fraction() > 0.0);
    }

    #[test]
    fn waw_and_war_split_bundles() {
        let mut ir = VliwIr::new();
        ir.push(addi(1, 0, 1));
        ir.push(addi(1, 0, 2)); // WAW on r1
        let p = schedule(&ir, vec![]);
        assert_eq!(p.bundles.len(), 2);
        let mut ir = VliwIr::new();
        ir.push(addi(2, 1, 0)); // reads r1
        ir.push(addi(1, 0, 5)); // writes r1 (WAR)
        let p = schedule(&ir, vec![]);
        assert_eq!(p.bundles.len(), 2);
    }

    #[test]
    fn branches_end_bundles_and_targets_are_leaders() {
        let mut ir = VliwIr::new();
        let top = ir.push(addi(1, 1, -1)); // index 0, loop head
        ir.push(addi(2, 0, 7));
        ir.branch(
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg(1),
                rs2: Reg(0),
                offset: 0,
            },
            top,
        );
        let p = schedule(&ir, vec![]);
        // addi+addi pair (independent), then the branch alone.
        assert_eq!(p.bundles.len(), 2);
        assert!(!p.bundles[1].is_pair());
        assert_eq!(p.targets[&1], 0);
    }

    #[test]
    fn control_ops_never_take_slot1() {
        let mut ir = VliwIr::new();
        ir.push(addi(1, 0, 1));
        ir.jump(
            Instr::Jal {
                rd: Reg(0),
                offset: 0,
            },
            0,
        );
        let p = schedule(&ir, vec![]);
        assert_eq!(p.bundles.len(), 2, "jump must not pair into slot 1");
    }

    #[test]
    fn memory_op_may_lead_but_not_follow() {
        let lw = Instr::Load {
            width: minirisc::MemWidth::Word,
            unsigned: false,
            rd: Reg(3),
            rs1: Reg(1),
            offset: 0,
        };
        let mut ir = VliwIr::new();
        ir.push(lw);
        ir.push(addi(2, 0, 5));
        let p = schedule(&ir, vec![]);
        assert_eq!(p.bundles.len(), 1, "load pairs with a following ALU op");
        let mut ir = VliwIr::new();
        ir.push(addi(2, 0, 5));
        ir.push(lw);
        let p = schedule(&ir, vec![]);
        assert_eq!(p.bundles.len(), 2, "loads are slot-0 only");
    }
}
