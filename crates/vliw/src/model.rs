//! The OSM model of the VLIW core, plus a functional IR interpreter used as
//! its golden reference.
//!
//! The paper notes that "VLIW architectures have simpler pipeline control,
//! they can be easily modeled by OSM as well" (§6) — and indeed this model
//! needs only three stage managers and a reset manager: there are no operand
//! tokens at all, because the scheduler (the compiler) already guaranteed
//! independence. What remains is exactly what hardware still owes a VLIW:
//! structure (stage) tokens, variable memory latency, and control-hazard
//! squashing.

use crate::schedule::{Bundle, VliwProgram};
use memsys::{MemSystem, MemSystemConfig};
use minirisc::{effective_address, execute, CpuState, Instr, Memory, Outcome, Reg, SparseMemory};
use osm_core::{
    Behavior, BehaviorSnapshot, ByteReader, ByteWriter, Checkpoint, Edge, ExclusivePool,
    FaultHandle, FaultInjector, FaultPlan, HardwareLayer, IdentExpr, Machine, ManagerId,
    ManagerTable, ModelError, OsmId, OsmView, ResetManager, RestartPolicy, SpecBuilder,
    StateMachineSpec, TransitionCtx,
};
use std::sync::Arc;

/// Where bundles live in the (simulated) address space.
pub const CODE_BASE: u32 = 0x1000;
/// Where the data segment is loaded.
pub const DATA_BASE: u32 = 0x10000;

/// Timing configuration.
#[derive(Debug, Clone, Copy)]
pub struct VliwConfig {
    /// Memory subsystem (bundle fetch = one 8-byte access).
    pub mem: MemSystemConfig,
    /// Operation slots (must exceed the 3-stage depth).
    pub osm_count: usize,
}

impl Default for VliwConfig {
    fn default() -> Self {
        VliwConfig {
            mem: MemSystemConfig::strongarm_like(),
            osm_count: 6,
        }
    }
}

/// Result of a VLIW run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VliwResult {
    /// Cycles until the halting bundle retired.
    pub cycles: u64,
    /// Retired operations (both slots, NOPs excluded).
    pub retired_ops: u64,
    /// Retired bundles.
    pub retired_bundles: u64,
    /// Squashed wrong-path bundles.
    pub squashed: u64,
    /// Exit code.
    pub exit_code: u32,
    /// Output bytes.
    pub output: Vec<u8>,
}

impl VliwResult {
    /// Cycles per retired operation (< 1 shows slot parallelism paying off).
    pub fn cpo(&self) -> f64 {
        if self.retired_ops == 0 {
            0.0
        } else {
            self.cycles as f64 / self.retired_ops as f64
        }
    }
}

/// Runs the program functionally (one bundle at a time) — the golden
/// reference for the timing model.
///
/// # Panics
/// Panics if the program runs more than `max_bundles` bundles (no halt).
pub fn interpret(program: &VliwProgram, max_bundles: u64) -> VliwResult {
    let mut cpu = CpuState::new(0);
    let mut mem = SparseMemory::new();
    for (k, w) in program.data.iter().enumerate() {
        mem.write_u32(DATA_BASE + 4 * k as u32, *w);
    }
    let mut pc = 0usize;
    let mut retired_ops = 0u64;
    let mut retired_bundles = 0u64;
    let mut output = Vec::new();
    let mut exit_code = 0u32;
    let mut steps = 0u64;
    'run: while pc < program.bundles.len() {
        steps += 1;
        assert!(steps <= max_bundles, "VLIW program does not halt");
        let bundle = program.bundles[pc];
        let mut next = pc + 1;
        for (slot, &instr) in bundle.slots.iter().enumerate() {
            if slot == 1 && !bundle.is_pair() {
                break;
            }
            retired_ops += 1;
            match instr {
                Instr::Halt => {
                    retired_bundles += 1;
                    break 'run;
                }
                Instr::Syscall => {
                    let nr = cpu.gpr(Reg(10));
                    let arg = cpu.gpr(Reg(11));
                    match nr {
                        minirisc::syscalls::EXIT => {
                            exit_code = arg;
                            retired_bundles += 1;
                            break 'run;
                        }
                        minirisc::syscalls::PUTCHAR => output.push(arg as u8),
                        minirisc::syscalls::PUTUINT => {
                            output.extend_from_slice(arg.to_string().as_bytes())
                        }
                        other => panic!("unknown syscall {other}"),
                    }
                }
                Instr::Branch { cond, rs1, rs2, .. } => {
                    if cond.eval(cpu.gpr(rs1), cpu.gpr(rs2)) {
                        next = program.targets[&pc];
                    }
                }
                Instr::Jal { .. } => next = program.targets[&pc],
                other => {
                    let out = execute(other, &mut cpu, &mut mem);
                    debug_assert_eq!(out, Outcome::Next, "non-control op in bundle");
                }
            }
        }
        retired_bundles += 1;
        pc = next;
    }
    VliwResult {
        cycles: 0,
        retired_ops,
        retired_bundles,
        squashed: 0,
        exit_code,
        output,
    }
}

/// Shared hardware state of the VLIW model.
#[derive(Debug, Clone)]
pub struct VliwShared {
    /// Architectural state.
    pub cpu: CpuState,
    /// Functional memory (data segment).
    pub mem: SparseMemory,
    /// Timing memory subsystem.
    pub memsys: MemSystem,
    program: Arc<VliwProgram>,
    next_bundle: usize,
    stop_fetch: bool,
    halted: bool,
    exit_code: u32,
    output: Vec<u8>,
    young: Vec<OsmId>,
    retired_ops: u64,
    retired_bundles: u64,
    squashed: u64,
    fetch_timer: u32,
    exec_timer: u32,
    ids: VliwManagers,
}

/// Manager handles (exposed for fault injection and inspection).
#[derive(Debug, Clone, Copy)]
pub struct VliwManagers {
    /// Fetch stage.
    pub mf: ManagerId,
    /// Execute stage.
    pub me: ManagerId,
    /// Writeback stage.
    pub mw: ManagerId,
    /// Reset manager (squash).
    pub reset: ManagerId,
}

impl HardwareLayer for VliwShared {
    fn clock(&mut self, _cycle: u64, managers: &mut ManagerTable) {
        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.mf);
        pool.block_release(0, self.fetch_timer > 0);
        self.fetch_timer = self.fetch_timer.saturating_sub(1);
        let pool: &mut ExclusivePool = managers.downcast_mut(self.ids.me);
        pool.block_release(0, self.exec_timer > 0);
        self.exec_timer = self.exec_timer.saturating_sub(1);
    }
}

impl VliwShared {
    /// Serializes the mutable shared state for the on-disk checkpoint
    /// format. The bundle program and manager handles are excluded —
    /// [`VliwShared::decode_state`] takes them from a same-construction
    /// template.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&self.cpu.export_state());
        w.put_bytes(&self.mem.export_state());
        w.put_bytes(&self.memsys.export_state());
        w.put_u64(self.next_bundle as u64);
        w.put_bool(self.stop_fetch);
        w.put_bool(self.halted);
        w.put_u32(self.exit_code);
        w.put_bytes(&self.output);
        w.put_u32(self.young.len() as u32);
        for osm in &self.young {
            w.put_u32(osm.0);
        }
        w.put_u64(self.retired_ops);
        w.put_u64(self.retired_bundles);
        w.put_u64(self.squashed);
        w.put_u32(self.fetch_timer);
        w.put_u32(self.exec_timer);
        w.into_bytes()
    }

    /// Decodes state written by [`VliwShared::encode_state`]. `template`
    /// must come from a simulator built over the same program and
    /// configuration.
    pub fn decode_state(bytes: &[u8], template: &VliwShared) -> Option<VliwShared> {
        let mut r = ByteReader::new(bytes);
        let mut s = template.clone();
        if !s.cpu.import_state(r.take_bytes()?) {
            return None;
        }
        if !s.mem.import_state(r.take_bytes()?) {
            return None;
        }
        if !s.memsys.import_state(r.take_bytes()?) {
            return None;
        }
        let next_bundle = r.take_u64()? as usize;
        if next_bundle > s.program.bundles.len() {
            return None;
        }
        s.next_bundle = next_bundle;
        s.stop_fetch = r.take_bool()?;
        s.halted = r.take_bool()?;
        s.exit_code = r.take_u32()?;
        s.output = r.take_bytes()?.to_vec();
        let n = r.take_u32()? as usize;
        let mut young = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            young.push(OsmId(r.take_u32()?));
        }
        s.young = young;
        s.retired_ops = r.take_u64()?;
        s.retired_bundles = r.take_u64()?;
        s.squashed = r.take_u64()?;
        s.fetch_timer = r.take_u32()?;
        s.exec_timer = r.take_u32()?;
        r.is_done().then_some(s)
    }
}

fn build_spec(ids: VliwManagers) -> Arc<StateMachineSpec> {
    let mut b = SpecBuilder::new("vliw-bundle");
    let i = b.state("I");
    let f = b.state("F");
    let e = b.state("E");
    let w = b.state("W");
    b.initial(i);
    b.edge(i, f).named("fetch").allocate(ids.mf, IdentExpr::Const(0));
    b.edge(f, i)
        .named("reset_f")
        .priority(10)
        .inquire(ids.reset, IdentExpr::Const(0))
        .discard_all();
    b.edge(f, e)
        .named("exec")
        .release(ids.mf, IdentExpr::AnyHeld)
        .allocate(ids.me, IdentExpr::Const(0));
    b.edge(e, w)
        .named("wb")
        .release(ids.me, IdentExpr::AnyHeld)
        .allocate(ids.mw, IdentExpr::Const(0));
    b.edge(w, i).named("retire").release(ids.mw, IdentExpr::AnyHeld);
    b.build().expect("static spec is valid")
}

#[derive(Debug, Default, Clone)]
struct BundleOp {
    idx: usize,
    is_halting: bool,
    /// Control transfer resolved in E, applied at W (late branch resolve).
    redirect: Option<usize>,
    ops: u64,
}

impl BundleOp {
    fn run_slot(&mut self, instr: Instr, ctx: &mut TransitionCtx<'_, VliwShared>) {
        self.ops += 1;
        match instr {
            Instr::Halt => {
                self.is_halting = true;
            }
            Instr::Syscall => {
                let nr = ctx.shared.cpu.gpr(Reg(10));
                let arg = ctx.shared.cpu.gpr(Reg(11));
                match nr {
                    minirisc::syscalls::EXIT => {
                        self.is_halting = true;
                        ctx.shared.exit_code = arg;
                        ctx.shared.stop_fetch = true;
                        squash_young(ctx);
                    }
                    minirisc::syscalls::PUTCHAR => ctx.shared.output.push(arg as u8),
                    minirisc::syscalls::PUTUINT => ctx
                        .shared
                        .output
                        .extend_from_slice(arg.to_string().as_bytes()),
                    other => panic!("unknown syscall {other}"),
                }
            }
            Instr::Branch { cond, rs1, rs2, .. } => {
                let taken = cond.eval(ctx.shared.cpu.gpr(rs1), ctx.shared.cpu.gpr(rs2));
                if taken {
                    self.redirect = Some(ctx.shared.program.targets[&self.idx]);
                }
            }
            Instr::Jal { .. } => {
                self.redirect = Some(ctx.shared.program.targets[&self.idx]);
            }
            other => {
                if let Some(addr) = effective_address(other, &ctx.shared.cpu) {
                    ctx.shared.exec_timer = ctx.shared.memsys.data_penalty(addr);
                }
                let out = execute(other, &mut ctx.shared.cpu, &mut ctx.shared.mem);
                debug_assert_eq!(out, Outcome::Next);
            }
        }
    }
}

fn squash_young(ctx: &mut TransitionCtx<'_, VliwShared>) {
    let reset: &mut ResetManager = ctx.managers.downcast_mut(ctx.shared.ids.reset);
    for &osm in &ctx.shared.young {
        reset.arm(osm);
    }
}

impl Behavior<VliwShared> for BundleOp {
    fn snapshot(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::of(self.clone())
    }

    fn restore(&mut self, snap: &BehaviorSnapshot) -> bool {
        match snap.downcast::<BundleOp>() {
            Some(state) => {
                self.clone_from(state);
                true
            }
            None => false,
        }
    }

    fn encode_snapshot(&self, snap: &BehaviorSnapshot) -> Option<Vec<u8>> {
        let state = snap.downcast::<BundleOp>()?;
        let mut w = ByteWriter::new();
        w.put_u64(state.idx as u64);
        w.put_bool(state.is_halting);
        match state.redirect {
            None => w.put_bool(false),
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t as u64);
            }
        }
        w.put_u64(state.ops);
        Some(w.into_bytes())
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Option<BehaviorSnapshot> {
        let mut r = ByteReader::new(bytes);
        let idx = r.take_u64()? as usize;
        let is_halting = r.take_bool()?;
        let redirect = if r.take_bool()? {
            Some(r.take_u64()? as usize)
        } else {
            None
        };
        let ops = r.take_u64()?;
        r.is_done().then(|| {
            BehaviorSnapshot::of(BundleOp {
                idx,
                is_halting,
                redirect,
                ops,
            })
        })
    }

    fn edge_enabled(&self, edge: &Edge, _view: &OsmView<'_>, shared: &VliwShared) -> bool {
        edge.name != "fetch"
            || (!shared.stop_fetch && shared.next_bundle < shared.program.bundles.len())
    }

    fn on_transition(&mut self, edge: &Edge, ctx: &mut TransitionCtx<'_, VliwShared>) {
        match edge.name.as_str() {
            "fetch" => {
                self.idx = ctx.shared.next_bundle;
                self.is_halting = false;
                self.redirect = None;
                self.ops = 0;
                ctx.shared.next_bundle += 1;
                ctx.shared.young.push(ctx.osm);
                let addr = CODE_BASE + 8 * self.idx as u32;
                let penalty = ctx.shared.memsys.fetch_penalty(addr);
                ctx.shared.fetch_timer = penalty;
            }
            "exec" => {
                let osm = ctx.osm;
                ctx.shared.young.retain(|o| *o != osm);
                let bundle: Bundle = ctx.shared.program.bundles[self.idx];
                self.run_slot(bundle.slots[0], ctx);
                if bundle.is_pair() && !self.is_halting {
                    self.run_slot(bundle.slots[1], ctx);
                }
            }
            "wb" => {
                // Late control resolution: redirects and the halt take
                // effect one stage after execute, squashing the wrong-path
                // bundle that entered the pipe in the window.
                if let Some(target) = self.redirect.take() {
                    ctx.shared.next_bundle = target;
                    squash_young(ctx);
                }
                if self.is_halting {
                    ctx.shared.stop_fetch = true;
                    squash_young(ctx);
                }
            }
            "retire" => {
                ctx.shared.retired_ops += self.ops;
                ctx.shared.retired_bundles += 1;
                if self.is_halting {
                    ctx.shared.halted = true;
                }
            }
            "reset_f" => {
                let osm = ctx.osm;
                ctx.shared.young.retain(|o| *o != osm);
                ctx.shared.squashed += 1;
                ctx.shared.fetch_timer = 0;
                let pool: &mut ExclusivePool = ctx.managers.downcast_mut(ctx.shared.ids.mf);
                pool.block_release(0, false);
                let reset: &mut ResetManager = ctx.managers.downcast_mut(ctx.shared.ids.reset);
                reset.disarm(osm);
            }
            other => unreachable!("unknown edge `{other}`"),
        }
    }
}

/// The OSM-based VLIW simulator.
pub struct VliwSim {
    machine: Machine<VliwShared>,
}

impl std::fmt::Debug for VliwSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VliwSim")
            .field("cycle", &self.machine.cycle())
            .finish()
    }
}

impl VliwSim {
    /// Builds the model around `program`.
    pub fn new(cfg: VliwConfig, program: &VliwProgram) -> Self {
        let mut mem = SparseMemory::new();
        for (k, w) in program.data.iter().enumerate() {
            mem.write_u32(DATA_BASE + 4 * k as u32, *w);
        }
        let shared = VliwShared {
            cpu: CpuState::new(0),
            mem,
            memsys: MemSystem::new(cfg.mem),
            program: Arc::new(program.clone()),
            next_bundle: 0,
            stop_fetch: false,
            halted: false,
            exit_code: 0,
            output: Vec::new(),
            young: Vec::new(),
            retired_ops: 0,
            retired_bundles: 0,
            squashed: 0,
            fetch_timer: 0,
            exec_timer: 0,
            ids: VliwManagers {
                mf: ManagerId(u32::MAX),
                me: ManagerId(u32::MAX),
                mw: ManagerId(u32::MAX),
                reset: ManagerId(u32::MAX),
            },
        };
        let mut machine = Machine::new(shared);
        let ids = VliwManagers {
            mf: machine.add_manager(ExclusivePool::new("fetch", 1)),
            me: machine.add_manager(ExclusivePool::new("exec", 1)),
            mw: machine.add_manager(ExclusivePool::new("writeback", 1)),
            reset: machine.add_manager(ResetManager::new("reset")),
        };
        machine.shared.ids = ids;
        let spec = build_spec(ids);
        for _ in 0..cfg.osm_count.max(4) {
            machine.add_osm(&spec, BundleOp::default());
        }
        machine.set_restart_policy(RestartPolicy::NoRestart);
        VliwSim { machine }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<VliwShared> {
        &self.machine
    }

    /// Mutable access to the underlying machine (scheduler-mode selection,
    /// observer installation, A/B experiments).
    pub fn machine_mut(&mut self) -> &mut Machine<VliwShared> {
        &mut self.machine
    }

    /// Manager handles (targets for [`VliwSim::inject_faults`]).
    pub fn ids(&self) -> VliwManagers {
        self.machine.shared.ids
    }

    /// Captures a full mid-run checkpoint.
    ///
    /// # Errors
    /// [`osm_core::ModelError::SnapshotUnsupported`] if a manager without
    /// snapshot support was installed.
    pub fn checkpoint(&self) -> Result<Checkpoint<VliwShared>, ModelError> {
        self.machine.checkpoint()
    }

    /// Rewinds the simulator to `ckpt` (which must come from this
    /// simulator's own [`VliwSim::checkpoint`]).
    ///
    /// # Errors
    /// [`osm_core::ModelError::SnapshotMismatch`] on a shape mismatch.
    pub fn restore(&mut self, ckpt: &Checkpoint<VliwShared>) -> Result<(), ModelError> {
        self.machine.restore(ckpt)
    }

    /// Serializes a full checkpoint to the versioned, digest-sealed on-disk
    /// byte format (see [`osm_core::CHECKPOINT_MAGIC`]).
    ///
    /// # Errors
    /// Propagates checkpoint errors; [`osm_core::ModelError::SnapshotUnsupported`]
    /// if any component lacks a byte codec.
    pub fn checkpoint_bytes(&self) -> Result<Vec<u8>, ModelError> {
        let ckpt = self.machine.checkpoint()?;
        let shared_bytes = ckpt.shared().encode_state();
        self.machine.encode_checkpoint(&ckpt, &shared_bytes)
    }

    /// Restores this simulator from bytes written by
    /// [`VliwSim::checkpoint_bytes`] on a simulator built over the same
    /// program and configuration.
    ///
    /// # Errors
    /// [`osm_core::ModelError::SnapshotMismatch`] if the bytes are damaged
    /// or were taken from a differently-configured machine.
    pub fn restore_checkpoint_bytes(&mut self, bytes: &[u8]) -> Result<(), ModelError> {
        let template = &self.machine.shared;
        let ckpt = self
            .machine
            .decode_checkpoint(bytes, |b| VliwShared::decode_state(b, template))?;
        self.machine.restore(&ckpt)
    }

    /// Installs a deterministic fault injector in front of manager
    /// `target` (any of the handles in [`VliwSim::ids`]) and returns the
    /// operator handle for it.
    pub fn inject_faults(&mut self, target: ManagerId, plan: FaultPlan) -> FaultHandle {
        FaultInjector::install(&mut self.machine.managers, target, plan)
    }

    /// Arms the stall watchdog: if no OSM makes progress for `cycles`
    /// consecutive cycles (see [`osm_core::Machine::set_stall_limit`]),
    /// stepping fails with a diagnosed [`osm_core::ModelError::Stalled`].
    pub fn set_stall_limit(&mut self, cycles: Option<u64>) {
        self.machine.set_stall_limit(cycles);
    }

    /// True once the halting bundle has retired (chunked run loops use
    /// this to distinguish halt from an exhausted per-chunk cycle target).
    pub fn halted(&self) -> bool {
        self.machine.shared.halted
    }

    /// Runs until the halting bundle retires or `max_cycles` pass.
    ///
    /// # Errors
    /// Propagates [`ModelError`] (deadlock).
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<VliwResult, ModelError> {
        while !self.machine.shared.halted && self.machine.cycle() < max_cycles {
            self.machine.step()?;
        }
        let s = &self.machine.shared;
        Ok(VliwResult {
            cycles: self.machine.cycle(),
            retired_ops: s.retired_ops,
            retired_bundles: s.retired_bundles,
            squashed: s.squashed,
            exit_code: s.exit_code,
            output: s.output.clone(),
        })
    }
}
