//! # vliw — the VLIW demonstration of paper §6
//!
//! "Since Very Long Instruction Word (VLIW) architectures have simpler
//! pipeline control, they can be easily modeled by OSM as well." This crate
//! substantiates that sentence end to end:
//!
//! * [`schedule`] — a miniature VLIW compiler: pairs independent MiniRISC
//!   operations into two-slot [`Bundle`]s, keeps branch targets at bundle
//!   boundaries, pads with NOPs.
//! * [`VliwSim`] — the OSM model of the core: three stage managers plus a
//!   reset manager are *all* the hardware needs, because the scheduler (not
//!   tokens) guarantees operand independence.
//! * [`interpret`] — a functional reference for validating both.
//!
//! ```
//! use minirisc::{AluOp, Instr, Reg};
//! use vliw::{interpret, schedule, VliwConfig, VliwIr, VliwSim};
//!
//! # fn main() -> Result<(), osm_core::ModelError> {
//! let mut ir = VliwIr::new();
//! ir.push(Instr::AluImm { op: AluOp::Add, rd: Reg(11), rs1: Reg(0), imm: 9 });
//! ir.push(Instr::AluImm { op: AluOp::Add, rd: Reg(10), rs1: Reg(0), imm: 0 });
//! ir.push(Instr::Syscall);
//! let program = schedule(&ir, vec![]);
//! let golden = interpret(&program, 1_000);
//! let timed = VliwSim::new(VliwConfig::default(), &program).run_to_halt(10_000)?;
//! assert_eq!(timed.exit_code, golden.exit_code);
//! assert_eq!(timed.exit_code, 9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod model;
mod schedule;

pub use model::{
    interpret, VliwConfig, VliwManagers, VliwResult, VliwShared, VliwSim, CODE_BASE, DATA_BASE,
};
pub use schedule::{schedule, Bundle, VliwIr, VliwProgram};

#[cfg(test)]
mod tests {
    use super::*;
    use minirisc::{AluOp, BranchCond, Instr, MemWidth, Reg};

    fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
        Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(rd),
            rs1: Reg(rs1),
            imm,
        }
    }

    fn exit_with(ir: &mut VliwIr, reg: u8) {
        ir.push(addi(10, 0, 0));
        ir.push(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(11),
            rs1: Reg(reg),
            rs2: Reg(0),
        });
        ir.push(Instr::Syscall);
    }

    /// A countdown loop with a body of independent adds.
    fn ilp_loop(iters: i32, body: usize) -> VliwIr {
        let mut ir = VliwIr::new();
        ir.push(addi(1, 0, iters));
        let top = ir.instrs.len();
        for k in 0..body {
            ir.push(addi(2 + (k % 6) as u8, 0, k as i32));
        }
        ir.push(addi(1, 1, -1));
        ir.branch(
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg(1),
                rs2: Reg(0),
                offset: 0,
            },
            top,
        );
        exit_with(&mut ir, 1);
        ir
    }

    #[test]
    fn model_matches_interpreter_functionally() {
        let program = schedule(&ilp_loop(20, 8), vec![]);
        let golden = interpret(&program, 100_000);
        let timed = VliwSim::new(VliwConfig::default(), &program)
            .run_to_halt(1_000_000)
            .expect("no deadlock");
        assert_eq!(timed.exit_code, golden.exit_code);
        assert_eq!(timed.retired_ops, golden.retired_ops);
        assert_eq!(timed.retired_bundles, golden.retired_bundles);
        assert_eq!(timed.output, golden.output);
    }

    #[test]
    fn slot_parallelism_beats_scalar_bundling() {
        let ir = ilp_loop(50, 8);
        let packed = schedule(&ir, vec![]);
        // Scalar baseline: one operation per bundle, same control targets.
        let scalar = VliwProgram {
            bundles: ir
                .instrs
                .iter()
                .map(|&i| Bundle {
                    slots: [i, Instr::NOP],
                })
                .collect(),
            data: vec![],
            targets: ir.targets.iter().map(|(&f, &t)| (f, t)).collect(),
        };
        let fast = VliwSim::new(VliwConfig::default(), &packed)
            .run_to_halt(1_000_000)
            .expect("runs");
        let slow = VliwSim::new(VliwConfig::default(), &scalar)
            .run_to_halt(1_000_000)
            .expect("runs");
        assert_eq!(fast.exit_code, slow.exit_code);
        assert!(
            fast.cycles * 5 < slow.cycles * 4,
            "packed {} vs scalar {}",
            fast.cycles,
            slow.cycles
        );
        assert!(fast.cpo() < 1.0, "cycles/op {} shows slot parallelism", fast.cpo());
    }

    #[test]
    fn taken_branches_squash_bundles() {
        let program = schedule(&ilp_loop(10, 2), vec![]);
        let r = VliwSim::new(VliwConfig::default(), &program)
            .run_to_halt(1_000_000)
            .expect("runs");
        assert!(r.squashed >= 9, "taken back-edges squash: {}", r.squashed);
    }

    #[test]
    fn data_segment_loads_and_stores_work() {
        let mut ir = VliwIr::new();
        // r1 = DATA_BASE; store 77; load it back.
        ir.push(Instr::Lui {
            rd: Reg(1),
            imm: DATA_BASE >> 13,
        });
        ir.push(addi(2, 0, 77));
        ir.push(Instr::Store {
            width: MemWidth::Word,
            rs2: Reg(2),
            rs1: Reg(1),
            offset: 4,
        });
        ir.push(Instr::Load {
            width: MemWidth::Word,
            unsigned: false,
            rd: Reg(3),
            rs1: Reg(1),
            offset: 4,
        });
        // Also read the pre-initialized data word 0.
        ir.push(Instr::Load {
            width: MemWidth::Word,
            unsigned: false,
            rd: Reg(4),
            rs1: Reg(1),
            offset: 0,
        });
        ir.push(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(5),
            rs1: Reg(3),
            rs2: Reg(4),
        });
        exit_with(&mut ir, 5);
        let program = schedule(&ir, vec![23]);
        let golden = interpret(&program, 1_000);
        assert_eq!(golden.exit_code, 100);
        let mut sim = VliwSim::new(VliwConfig::default(), &program);
        let timed = sim.run_to_halt(100_000).expect("runs");
        assert_eq!(timed.exit_code, 100);
        assert!(sim.machine().shared.memsys.dcache.stats.accesses >= 3);
    }

    #[test]
    fn checkpoint_bytes_restore_into_fresh_sim_replays_exactly() {
        // Checkpoint mid-loop with branch squashes in flight, then restore
        // into a freshly-built simulator from bytes alone.
        let program = schedule(&ilp_loop(20, 4), vec![]);
        let mut sim = VliwSim::new(VliwConfig::default(), &program);
        for _ in 0..30 {
            sim.machine_mut().step().unwrap();
        }
        let bytes = sim.checkpoint_bytes().unwrap();
        let reference = sim.run_to_halt(1_000_000).unwrap();
        drop(sim);

        let mut fresh = VliwSim::new(VliwConfig::default(), &program);
        fresh.restore_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(fresh.machine().cycle(), 30);
        let replay = fresh.run_to_halt(1_000_000).unwrap();
        assert_eq!(replay, reference);

        // Damaged bytes are rejected by the seal.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        let mut victim = VliwSim::new(VliwConfig::default(), &program);
        assert!(victim.restore_checkpoint_bytes(&bad).is_err());
    }

    #[test]
    fn in_memory_checkpoint_rewinds() {
        let program = schedule(&ilp_loop(12, 3), vec![]);
        let mut sim = VliwSim::new(VliwConfig::default(), &program);
        for _ in 0..10 {
            sim.machine_mut().step().unwrap();
        }
        let ckpt = sim.checkpoint().unwrap();
        let reference = sim.run_to_halt(1_000_000).unwrap();
        sim.restore(&ckpt).unwrap();
        assert_eq!(sim.machine().cycle(), 10);
        let replay = sim.run_to_halt(1_000_000).unwrap();
        assert_eq!(replay, reference);
    }

    #[test]
    fn deterministic() {
        let program = schedule(&ilp_loop(15, 5), vec![]);
        let a = VliwSim::new(VliwConfig::default(), &program)
            .run_to_halt(1_000_000)
            .expect("runs");
        let b = VliwSim::new(VliwConfig::default(), &program)
            .run_to_halt(1_000_000)
            .expect("runs");
        assert_eq!(a, b);
    }
}
