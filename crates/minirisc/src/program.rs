//! Program images: a contiguous block of encoded words plus metadata.

use crate::encode::{encode, EncodeError};
use crate::instr::Instr;
use crate::mem::Memory;
use std::collections::BTreeMap;

/// A loadable program image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Load address of the first word.
    pub base: u32,
    /// Encoded 32-bit words (instructions and data).
    pub words: Vec<u32>,
    /// Entry point.
    pub entry: u32,
    /// Label addresses (from the assembler).
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Builds a program from instructions, loaded and entered at `base`.
    ///
    /// # Errors
    /// Returns [`EncodeError`] if an instruction cannot be encoded.
    pub fn from_instrs(base: u32, instrs: &[Instr]) -> Result<Self, EncodeError> {
        let words = instrs.iter().map(|&i| encode(i)).collect::<Result<_, _>>()?;
        Ok(Program {
            base,
            words,
            entry: base,
            symbols: BTreeMap::new(),
        })
    }

    /// Copies the image into `mem`.
    pub fn load_into<M: Memory>(&self, mem: &mut M) {
        for (k, &w) in self.words.iter().enumerate() {
            mem.write_u32(self.base.wrapping_add(4 * k as u32), w);
        }
    }

    /// First address past the image.
    pub fn end(&self) -> u32 {
        self.base.wrapping_add(4 * self.words.len() as u32)
    }

    /// Image size in bytes.
    pub fn len_bytes(&self) -> usize {
        4 * self.words.len()
    }

    /// True if the image has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Instr};
    use crate::mem::SparseMemory;
    use crate::reg::Reg;

    #[test]
    fn from_instrs_and_load() {
        let p = Program::from_instrs(
            0x1000,
            &[
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 42,
                },
                Instr::Halt,
            ],
        )
        .unwrap();
        assert_eq!(p.entry, 0x1000);
        assert_eq!(p.end(), 0x1008);
        assert_eq!(p.len_bytes(), 8);
        assert!(!p.is_empty());
        let mut mem = SparseMemory::new();
        p.load_into(&mut mem);
        assert_eq!(mem.read_u32(0x1000), p.words[0]);
        assert_eq!(mem.read_u32(0x1004), p.words[1]);
    }

    #[test]
    fn encode_failure_propagates() {
        let r = Program::from_instrs(
            0,
            &[Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 1 << 20,
            }],
        );
        assert!(r.is_err());
    }
}
