//! The MiniRISC-32 instruction set.
//!
//! A compact 32-bit load/store ISA designed as the substrate for the OSM
//! case studies: it has every instruction *class* whose timing behaviour the
//! paper's evaluation exercises — single-cycle integer ALU, multi-cycle
//! multiply/divide, loads/stores (cache-dependent latency), conditional
//! branches and jumps (control hazards), floating-point operations (distinct
//! function units / reservation stations on the superscalar model) and
//! serializing system operations.

use crate::reg::{ArchReg, FReg, Reg};
use std::fmt;

/// Integer ALU operation (register or immediate form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left logical (by low 5 bits).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
}

impl AluOp {
    /// All ALU operations, in opcode order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Opcode sub-index.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&o| o == self).unwrap() as u8
    }

    /// Mnemonic stem (`add`, `sub`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Multi-cycle integer operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// Low 32 bits of the signed product.
    Mul,
    /// High 32 bits of the signed 64-bit product.
    Mulh,
    /// Signed division (division by zero yields all ones).
    Div,
    /// Signed remainder (remainder by zero yields the dividend).
    Rem,
}

impl MulOp {
    /// All multiplier-class operations, in opcode order.
    pub const ALL: [MulOp; 4] = [MulOp::Mul, MulOp::Mulh, MulOp::Div, MulOp::Rem];

    /// Opcode sub-index.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&o| o == self).unwrap() as u8
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mulh => "mulh",
            MulOp::Div => "div",
            MulOp::Rem => "rem",
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Branch condition over two GPRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than, signed.
    Lt,
    /// Greater or equal, signed.
    Ge,
    /// Less than, unsigned.
    Ltu,
    /// Greater or equal, unsigned.
    Geu,
}

impl BranchCond {
    /// All branch conditions, in opcode order.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Opcode sub-index.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Floating-point arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition.
    FAdd,
    /// Subtraction.
    FSub,
    /// Multiplication.
    FMul,
    /// Division.
    FDiv,
}

impl FpuOp {
    /// All FPU operations, in opcode order.
    pub const ALL: [FpuOp; 4] = [FpuOp::FAdd, FpuOp::FSub, FpuOp::FMul, FpuOp::FDiv];

    /// Opcode sub-index.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&o| o == self).unwrap() as u8
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::FAdd => "fadd",
            FpuOp::FSub => "fsub",
            FpuOp::FMul => "fmul",
            FpuOp::FDiv => "fdiv",
        }
    }
}

/// Floating-point comparison (result written to a GPR as 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpCond {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
}

impl FpCmpCond {
    /// All FP comparison conditions, in opcode order.
    pub const ALL: [FpCmpCond; 3] = [FpCmpCond::Eq, FpCmpCond::Lt, FpCmpCond::Le];

    /// Opcode sub-index.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCmpCond::Eq => "feq",
            FpCmpCond::Lt => "flt",
            FpCmpCond::Le => "fle",
        }
    }

    /// Evaluates the condition.
    pub fn eval(self, a: f32, b: f32) -> bool {
        match self {
            FpCmpCond::Eq => a == b,
            FpCmpCond::Lt => a < b,
            FpCmpCond::Le => a <= b,
        }
    }
}

/// One MiniRISC-32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Stop the machine.
    Halt,
    /// Environment call: number in `r10`, argument in `r11`.
    Syscall,
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation (no `SubI`; use a negative `AddI`).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Sign-extended 14-bit immediate.
        imm: i32,
    },
    /// Load upper immediate: `rd = imm << 13`.
    Lui {
        /// Destination.
        rd: Reg,
        /// 19-bit immediate.
        imm: u32,
    },
    /// Multiplier-class operation (multi-cycle).
    Mul {
        /// Operation.
        op: MulOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Load from memory: `rd = mem[rs1 + offset]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Zero- (true) or sign-extend (false) sub-word loads.
        unsigned: bool,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Store to memory: `mem[rs1 + offset] = rs2`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value register.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Conditional branch; `offset` is in bytes relative to this instruction.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Byte offset (multiple of 4).
        offset: i32,
    },
    /// Jump and link; `offset` in bytes relative to this instruction.
    Jal {
        /// Link destination (`r0` for a plain jump).
        rd: Reg,
        /// Byte offset (multiple of 4).
        offset: i32,
    },
    /// Indirect jump and link: target `rs1 + offset`.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Floating-point arithmetic.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// Floating-point comparison into a GPR.
    FpCmp {
        /// Condition.
        cond: FpCmpCond,
        /// Destination GPR (1 if true, else 0).
        rd: Reg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// Convert signed integer to float: `fd = (f32)rs1`.
    CvtSW {
        /// Destination FPR.
        fd: FReg,
        /// Source GPR.
        rs1: Reg,
    },
    /// Convert float to signed integer (truncating): `rd = (i32)fs1`.
    CvtWS {
        /// Destination GPR.
        rd: Reg,
        /// Source FPR.
        fs1: FReg,
    },
    /// FP load: `fd = mem[rs1 + offset]` (word).
    FpLoad {
        /// Destination FPR.
        fd: FReg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// FP store: `mem[rs1 + offset] = fs2` (word).
    FpStore {
        /// Value FPR.
        fs2: FReg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i32,
    },
}

/// Coarse instruction class used by micro-architecture models to steer
/// operations to function units and pick latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Single-cycle integer ALU.
    IntAlu,
    /// Multi-cycle multiply.
    IntMul,
    /// Multi-cycle divide/remainder.
    IntDiv,
    /// Memory load (integer or FP).
    Load,
    /// Memory store (integer or FP).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (`jal`/`jalr`).
    Jump,
    /// FP add/sub/compare/convert.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// Serializing system operation.
    System,
}

impl Instr {
    /// A canonical no-op (`add r0, r0, r0`).
    pub const NOP: Instr = Instr::Alu {
        op: AluOp::Add,
        rd: Reg(0),
        rs1: Reg(0),
        rs2: Reg(0),
    };

    /// The instruction's class.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Halt | Instr::Syscall => InstrClass::System,
            Instr::Alu { .. } | Instr::AluImm { .. } | Instr::Lui { .. } => InstrClass::IntAlu,
            Instr::Mul { op, .. } => match op {
                MulOp::Mul | MulOp::Mulh => InstrClass::IntMul,
                MulOp::Div | MulOp::Rem => InstrClass::IntDiv,
            },
            Instr::Load { .. } | Instr::FpLoad { .. } => InstrClass::Load,
            Instr::Store { .. } | Instr::FpStore { .. } => InstrClass::Store,
            Instr::Branch { .. } => InstrClass::Branch,
            Instr::Jal { .. } | Instr::Jalr { .. } => InstrClass::Jump,
            Instr::Fpu { op, .. } => match op {
                FpuOp::FAdd | FpuOp::FSub => InstrClass::FpAdd,
                FpuOp::FMul => InstrClass::FpMul,
                FpuOp::FDiv => InstrClass::FpDiv,
            },
            Instr::FpCmp { .. } | Instr::CvtSW { .. } | Instr::CvtWS { .. } => InstrClass::FpAdd,
        }
    }

    /// The destination register, if the instruction writes one (writes to
    /// `r0` are reported as `None` — they create no dependence).
    pub fn dest(&self) -> Option<ArchReg> {
        let d = match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Mul { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::FpCmp { rd, .. }
            | Instr::CvtWS { rd, .. } => ArchReg::Gpr(rd),
            Instr::Fpu { fd, .. } | Instr::CvtSW { fd, .. } | Instr::FpLoad { fd, .. } => {
                ArchReg::Fpr(fd)
            }
            Instr::Halt
            | Instr::Syscall
            | Instr::Store { .. }
            | Instr::FpStore { .. }
            | Instr::Branch { .. } => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// The source registers read by the instruction (`r0` excluded: reading
    /// the hardwired zero is never a dependence).
    pub fn sources(&self) -> Vec<ArchReg> {
        let mut v: Vec<ArchReg> = Vec::with_capacity(2);
        let mut push = |r: ArchReg| {
            if !r.is_zero() && !v.contains(&r) {
                v.push(r);
            }
        };
        match *self {
            Instr::Alu { rs1, rs2, .. } | Instr::Mul { rs1, rs2, .. } => {
                push(rs1.into());
                push(rs2.into());
            }
            Instr::AluImm { rs1, .. }
            | Instr::Load { rs1, .. }
            | Instr::Jalr { rs1, .. }
            | Instr::CvtSW { rs1, .. } => push(rs1.into()),
            Instr::Store { rs1, rs2, .. } | Instr::Branch { rs1, rs2, .. } => {
                push(rs1.into());
                push(rs2.into());
            }
            Instr::Fpu { fs1, fs2, .. } | Instr::FpCmp { fs1, fs2, .. } => {
                push(fs1.into());
                push(fs2.into());
            }
            Instr::CvtWS { fs1, .. } => push(fs1.into()),
            Instr::FpLoad { rs1, .. } => push(rs1.into()),
            Instr::FpStore { rs1, fs2, .. } => {
                push(rs1.into());
                push(fs2.into());
            }
            Instr::Halt | Instr::Syscall | Instr::Lui { .. } | Instr::Jal { .. } => {}
        }
        // Syscall reads its argument registers.
        if matches!(self, Instr::Syscall) {
            push(Reg(10).into());
            push(Reg(11).into());
        }
        v
    }

    /// True for control-transfer instructions (branch targets must be
    /// resolved before the next fetch proceeds down the wrong path).
    pub fn is_control(&self) -> bool {
        matches!(
            self.class(),
            InstrClass::Branch | InstrClass::Jump | InstrClass::System
        )
    }

    /// True for memory accesses.
    pub fn is_mem(&self) -> bool {
        matches!(self.class(), InstrClass::Load | InstrClass::Store)
    }
}

impl Default for Instr {
    fn default() -> Self {
        Instr::NOP
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Halt => write!(f, "halt"),
            Instr::Syscall => write!(f, "syscall"),
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
            Instr::Mul { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Load {
                width,
                unsigned,
                rd,
                rs1,
                offset,
            } => {
                let m = match (width, unsigned) {
                    (MemWidth::Word, _) => "lw",
                    (MemWidth::Half, false) => "lh",
                    (MemWidth::Half, true) => "lhu",
                    (MemWidth::Byte, false) => "lb",
                    (MemWidth::Byte, true) => "lbu",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let m = match width {
                    MemWidth::Word => "sw",
                    MemWidth::Half => "sh",
                    MemWidth::Byte => "sb",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", cond.mnemonic()),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Fpu { op, fd, fs1, fs2 } => {
                write!(f, "{} {fd}, {fs1}, {fs2}", op.mnemonic())
            }
            Instr::FpCmp {
                cond,
                rd,
                fs1,
                fs2,
            } => write!(f, "{} {rd}, {fs1}, {fs2}", cond.mnemonic()),
            Instr::CvtSW { fd, rs1 } => write!(f, "cvtsw {fd}, {rs1}"),
            Instr::CvtWS { rd, fs1 } => write!(f, "cvtws {rd}, {fs1}"),
            Instr::FpLoad { fd, rs1, offset } => write!(f, "flw {fd}, {offset}({rs1})"),
            Instr::FpStore { fs2, rs1, offset } => write!(f, "fsw {fs2}, {offset}({rs1})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_assigned() {
        assert_eq!(Instr::NOP.class(), InstrClass::IntAlu);
        assert_eq!(
            Instr::Mul {
                op: MulOp::Div,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3)
            }
            .class(),
            InstrClass::IntDiv
        );
        assert_eq!(Instr::Halt.class(), InstrClass::System);
        assert_eq!(
            Instr::Fpu {
                op: FpuOp::FMul,
                fd: FReg(0),
                fs1: FReg(1),
                fs2: FReg(2)
            }
            .class(),
            InstrClass::FpMul
        );
    }

    #[test]
    fn dest_skips_r0() {
        assert_eq!(Instr::NOP.dest(), None);
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(4),
            rs1: Reg(0),
            imm: 1,
        };
        assert_eq!(i.dest(), Some(ArchReg::Gpr(Reg(4))));
    }

    #[test]
    fn sources_dedup_and_skip_r0() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(2),
        };
        assert_eq!(i.sources(), vec![ArchReg::Gpr(Reg(2))]);
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(0),
            imm: 3,
        };
        assert!(i.sources().is_empty());
    }

    #[test]
    fn branch_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Lt.eval(-1i32 as u32, 0));
        assert!(!BranchCond::Ltu.eval(-1i32 as u32, 0));
        assert!(BranchCond::Geu.eval(-1i32 as u32, 0));
    }

    #[test]
    fn control_and_mem_predicates() {
        assert!(Instr::Halt.is_control());
        assert!(Instr::Jal {
            rd: Reg(0),
            offset: 8
        }
        .is_control());
        assert!(Instr::Load {
            width: MemWidth::Word,
            unsigned: false,
            rd: Reg(1),
            rs1: Reg(2),
            offset: 0
        }
        .is_mem());
        assert!(!Instr::NOP.is_mem());
    }

    #[test]
    fn display_round_readable() {
        let i = Instr::Load {
            width: MemWidth::Byte,
            unsigned: true,
            rd: Reg(3),
            rs1: Reg(4),
            offset: -8,
        };
        assert_eq!(i.to_string(), "lbu r3, -8(r4)");
        assert_eq!(Instr::NOP.to_string(), "add r0, r0, r0");
    }

    #[test]
    fn syscall_reads_arg_registers() {
        let s = Instr::Syscall.sources();
        assert!(s.contains(&ArchReg::Gpr(Reg(10))));
        assert!(s.contains(&ArchReg::Gpr(Reg(11))));
    }
}
