//! Architectural register names.

use std::fmt;

/// A general-purpose register `r0`–`r31`. `r0` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional link register for `jal`.
    pub const LINK: Reg = Reg(31);
    /// Conventional stack pointer.
    pub const SP: Reg = Reg(30);

    /// Register index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for `r0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register `f0`–`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FReg(pub u8);

impl FReg {
    /// Register index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Either register file — used by decode metadata (hazard tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchReg {
    /// General-purpose register.
    Gpr(Reg),
    /// Floating-point register.
    Fpr(FReg),
}

impl ArchReg {
    /// A flat index over both files: GPRs 0–31, FPRs 32–63. Useful as a
    /// token identifier for a combined scoreboard.
    pub fn flat_index(self) -> usize {
        match self {
            ArchReg::Gpr(r) => r.index(),
            ArchReg::Fpr(r) => 32 + r.index(),
        }
    }

    /// True if this names `r0` (which is never a real dependency).
    pub fn is_zero(self) -> bool {
        matches!(self, ArchReg::Gpr(r) if r.is_zero())
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchReg::Gpr(r) => r.fmt(f),
            ArchReg::Fpr(r) => r.fmt(f),
        }
    }
}

impl From<Reg> for ArchReg {
    fn from(r: Reg) -> Self {
        ArchReg::Gpr(r)
    }
}

impl From<FReg> for ArchReg {
    fn from(r: FReg) -> Self {
        ArchReg::Fpr(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Reg(5).to_string(), "r5");
        assert_eq!(FReg(7).to_string(), "f7");
        assert_eq!(ArchReg::from(Reg(1)).to_string(), "r1");
        assert_eq!(ArchReg::from(FReg(2)).to_string(), "f2");
    }

    #[test]
    fn flat_index_separates_files() {
        assert_eq!(ArchReg::Gpr(Reg(3)).flat_index(), 3);
        assert_eq!(ArchReg::Fpr(FReg(3)).flat_index(), 35);
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(ArchReg::Gpr(Reg(0)).is_zero());
        assert!(!ArchReg::Fpr(FReg(0)).is_zero());
    }
}
