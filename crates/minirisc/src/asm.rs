//! A two-pass assembler for MiniRISC-32.
//!
//! Syntax overview (one statement per line, `;` or `#` start a comment):
//!
//! ```text
//! .org   0x1000        ; load/entry base (before any code)
//! .entry main          ; entry point (label or address)
//! main:
//!     li   r1, 100000  ; pseudo: addi or lui+ori
//!     la   r2, table   ; pseudo: address of a label
//! loop:
//!     lw   r3, 0(r2)
//!     add  r4, r4, r3
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! table:
//!     .word 1
//!     .word 2
//!     .space 8         ; 8 zero bytes
//! ```
//!
//! Pseudo-instructions: `nop`, `mv`, `li`, `la`, `j`, `call`, `ret`, `subi`,
//! `neg`, `not`. Register aliases: `zero` (r0), `sp` (r30), `ra` (r31).

use crate::encode::encode;
use crate::instr::{AluOp, BranchCond, FpCmpCond, FpuOp, Instr, MemWidth, MulOp};
use crate::program::Program;
use crate::reg::{FReg, Reg};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An assembly error with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// How an emitted word gets fixed up once labels are known.
#[derive(Debug, Clone)]
enum Patch {
    /// Branch/`jal` offset = label − own address.
    Rel(String),
    /// `lui` upper bits of a label address.
    AbsHi(String),
    /// `ori` lower bits of a label address.
    AbsLo(String),
}

#[derive(Debug, Clone)]
struct Emitted {
    instr: Option<Instr>, // None = raw data word
    raw: u32,
    patch: Option<Patch>,
    line: usize,
}

/// Assembles `src` into a [`Program`] loaded at `default_base` (overridden
/// by a `.org` directive).
///
/// # Errors
/// Returns the first [`AsmError`] encountered.
pub fn assemble(src: &str, default_base: u32) -> Result<Program, AsmError> {
    let mut base = default_base;
    let mut entry_spec: Option<(String, usize)> = None;
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut items: Vec<Emitted> = Vec::new();

    for (lineno, raw_line) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw_line;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();

        // Labels (possibly several, possibly followed by a statement).
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return err(line, format!("invalid label `{name}`"));
            }
            let addr = base.wrapping_add(4 * items.len() as u32);
            if symbols.insert(name.to_owned(), addr).is_some() {
                return err(line, format!("duplicate label `{name}`"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text.strip_prefix('.') {
            // Directive.
            let (dir, args) = split_first_word(rest);
            match dir {
                "org" => {
                    if !items.is_empty() {
                        return err(line, ".org must precede all code");
                    }
                    base = parse_u32(args.trim(), line)?;
                    // Re-point labels already defined at the old base (only
                    // possible when labels precede .org with no code, so
                    // they all sit at offset zero).
                    for v in symbols.values_mut() {
                        *v = base;
                    }
                }
                "entry" => entry_spec = Some((args.trim().to_owned(), line)),
                "word" => {
                    let v = parse_u32(args.trim(), line)?;
                    items.push(Emitted {
                        instr: None,
                        raw: v,
                        patch: None,
                        line,
                    });
                }
                "space" => {
                    let n = parse_u32(args.trim(), line)?;
                    if n % 4 != 0 {
                        return err(line, ".space size must be a multiple of 4");
                    }
                    for _ in 0..n / 4 {
                        items.push(Emitted {
                            instr: None,
                            raw: 0,
                            patch: None,
                            line,
                        });
                    }
                }
                other => return err(line, format!("unknown directive `.{other}`")),
            }
            continue;
        }

        parse_statement(text, line, &mut items)?;
    }

    // Pass 2: resolve patches and encode.
    let mut words = Vec::with_capacity(items.len());
    for (k, item) in items.iter().enumerate() {
        let addr = base.wrapping_add(4 * k as u32);
        let word = match &item.instr {
            None => item.raw,
            Some(instr) => {
                let mut instr = *instr;
                if let Some(patch) = &item.patch {
                    let resolve = |name: &str| -> Result<u32, AsmError> {
                        symbols.get(name).copied().ok_or_else(|| AsmError {
                            line: item.line,
                            message: format!("undefined label `{name}`"),
                        })
                    };
                    match patch {
                        Patch::Rel(name) => {
                            let target = resolve(name)?;
                            let delta = target.wrapping_sub(addr) as i32;
                            match &mut instr {
                                Instr::Branch { offset, .. } | Instr::Jal { offset, .. } => {
                                    *offset = delta;
                                }
                                _ => unreachable!("Rel patch on non-control instr"),
                            }
                        }
                        Patch::AbsHi(name) => {
                            let target = resolve(name)?;
                            if let Instr::Lui { imm, .. } = &mut instr {
                                *imm = target >> 13;
                            }
                        }
                        Patch::AbsLo(name) => {
                            let target = resolve(name)?;
                            if let Instr::AluImm { imm, .. } = &mut instr {
                                *imm = (target & 0x1FFF) as i32;
                            }
                        }
                    }
                }
                encode(instr).map_err(|e| AsmError {
                    line: item.line,
                    message: e.to_string(),
                })?
            }
        };
        words.push(word);
    }

    let entry = match entry_spec {
        None => base,
        Some((spec, line)) => {
            if let Some(&addr) = symbols.get(&spec) {
                addr
            } else {
                parse_u32(&spec, line)?
            }
        }
    };

    Ok(Program {
        base,
        words,
        entry,
        symbols,
    })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_first_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(p) => (&s[..p], &s[p..]),
        None => (s, ""),
    }
}

fn parse_u32(s: &str, line: usize) -> Result<u32, AsmError> {
    parse_i64(s, line).and_then(|v| {
        if (0..=u32::MAX as i64).contains(&v) || (i32::MIN as i64..0).contains(&v) {
            Ok(v as u32)
        } else {
            err(line, format!("value {v} out of 32-bit range"))
        }
    })
}

fn parse_i64(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("invalid number `{s}`")),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let s = s.trim();
    match s {
        "zero" => return Ok(Reg(0)),
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::LINK),
        _ => {}
    }
    if let Some(n) = s.strip_prefix('r') {
        if let Ok(n) = n.parse::<u8>() {
            if n < 32 {
                return Ok(Reg(n));
            }
        }
    }
    err(line, format!("invalid register `{s}`"))
}

fn parse_freg(s: &str, line: usize) -> Result<FReg, AsmError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('f') {
        if let Ok(n) = n.parse::<u8>() {
            if n < 32 {
                return Ok(FReg(n));
            }
        }
    }
    err(line, format!("invalid fp register `{s}`"))
}

/// Parses `offset(base)`.
fn parse_mem_operand(s: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| AsmError {
            line,
            message: format!("expected `offset(reg)`, got `{s}`"),
        })?;
    if !s.ends_with(')') {
        return err(line, format!("expected `offset(reg)`, got `{s}`"));
    }
    let off_str = s[..open].trim();
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_i64(off_str, line)? as i32
    };
    let reg = parse_reg(&s[open + 1..s.len() - 1], line)?;
    Ok((offset, reg))
}

/// A branch/jump target: a label or a numeric relative byte offset.
fn parse_target(s: &str, line: usize) -> Result<(i32, Option<Patch>), AsmError> {
    let s = s.trim();
    if is_ident(s) {
        Ok((0, Some(Patch::Rel(s.to_owned()))))
    } else {
        Ok((parse_i64(s, line)? as i32, None))
    }
}

fn push(items: &mut Vec<Emitted>, instr: Instr, patch: Option<Patch>, line: usize) {
    items.push(Emitted {
        instr: Some(instr),
        raw: 0,
        patch,
        line,
    });
}

fn parse_statement(text: &str, line: usize, items: &mut Vec<Emitted>) -> Result<(), AsmError> {
    let (mn, rest) = split_first_word(text);
    let args: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let argc = args.len();
    let need = |n: usize| -> Result<(), AsmError> {
        if argc == n {
            Ok(())
        } else {
            err(line, format!("`{mn}` expects {n} operand(s), got {argc}"))
        }
    };

    let alu_ops: &[(&str, AluOp)] = &[
        ("add", AluOp::Add),
        ("sub", AluOp::Sub),
        ("and", AluOp::And),
        ("or", AluOp::Or),
        ("xor", AluOp::Xor),
        ("sll", AluOp::Sll),
        ("srl", AluOp::Srl),
        ("sra", AluOp::Sra),
        ("slt", AluOp::Slt),
        ("sltu", AluOp::Sltu),
    ];

    // Register-register ALU.
    if let Some(&(_, op)) = alu_ops.iter().find(|&&(m, _)| m == mn) {
        need(3)?;
        push(
            items,
            Instr::Alu {
                op,
                rd: parse_reg(args[0], line)?,
                rs1: parse_reg(args[1], line)?,
                rs2: parse_reg(args[2], line)?,
            },
            None,
            line,
        );
        return Ok(());
    }
    // Immediate ALU (`addi`, ..., but also `sltui`). `subi` is a pseudo
    // handled below (there is no Sub-immediate encoding).
    if let Some(stem) = mn.strip_suffix('i').filter(|_| mn != "subi") {
        if let Some(&(_, op)) = alu_ops.iter().find(|&&(m, _)| m == stem) {
            need(3)?;
            push(
                items,
                Instr::AluImm {
                    op,
                    rd: parse_reg(args[0], line)?,
                    rs1: parse_reg(args[1], line)?,
                    imm: parse_i64(args[2], line)? as i32,
                },
                None,
                line,
            );
            return Ok(());
        }
    }

    let mul_ops: &[(&str, MulOp)] = &[
        ("mul", MulOp::Mul),
        ("mulh", MulOp::Mulh),
        ("div", MulOp::Div),
        ("rem", MulOp::Rem),
    ];
    if let Some(&(_, op)) = mul_ops.iter().find(|&&(m, _)| m == mn) {
        need(3)?;
        push(
            items,
            Instr::Mul {
                op,
                rd: parse_reg(args[0], line)?,
                rs1: parse_reg(args[1], line)?,
                rs2: parse_reg(args[2], line)?,
            },
            None,
            line,
        );
        return Ok(());
    }

    let loads: &[(&str, MemWidth, bool)] = &[
        ("lw", MemWidth::Word, false),
        ("lh", MemWidth::Half, false),
        ("lhu", MemWidth::Half, true),
        ("lb", MemWidth::Byte, false),
        ("lbu", MemWidth::Byte, true),
    ];
    if let Some(&(_, width, unsigned)) = loads.iter().find(|&&(m, _, _)| m == mn) {
        need(2)?;
        let (offset, rs1) = parse_mem_operand(args[1], line)?;
        push(
            items,
            Instr::Load {
                width,
                unsigned,
                rd: parse_reg(args[0], line)?,
                rs1,
                offset,
            },
            None,
            line,
        );
        return Ok(());
    }
    let stores: &[(&str, MemWidth)] = &[
        ("sw", MemWidth::Word),
        ("sh", MemWidth::Half),
        ("sb", MemWidth::Byte),
    ];
    if let Some(&(_, width)) = stores.iter().find(|&&(m, _)| m == mn) {
        need(2)?;
        let (offset, rs1) = parse_mem_operand(args[1], line)?;
        push(
            items,
            Instr::Store {
                width,
                rs2: parse_reg(args[0], line)?,
                rs1,
                offset,
            },
            None,
            line,
        );
        return Ok(());
    }

    let branches: &[(&str, BranchCond)] = &[
        ("beq", BranchCond::Eq),
        ("bne", BranchCond::Ne),
        ("blt", BranchCond::Lt),
        ("bge", BranchCond::Ge),
        ("bltu", BranchCond::Ltu),
        ("bgeu", BranchCond::Geu),
    ];
    if let Some(&(_, cond)) = branches.iter().find(|&&(m, _)| m == mn) {
        need(3)?;
        let (offset, patch) = parse_target(args[2], line)?;
        push(
            items,
            Instr::Branch {
                cond,
                rs1: parse_reg(args[0], line)?,
                rs2: parse_reg(args[1], line)?,
                offset,
            },
            patch,
            line,
        );
        return Ok(());
    }

    let fpu_ops: &[(&str, FpuOp)] = &[
        ("fadd", FpuOp::FAdd),
        ("fsub", FpuOp::FSub),
        ("fmul", FpuOp::FMul),
        ("fdiv", FpuOp::FDiv),
    ];
    if let Some(&(_, op)) = fpu_ops.iter().find(|&&(m, _)| m == mn) {
        need(3)?;
        push(
            items,
            Instr::Fpu {
                op,
                fd: parse_freg(args[0], line)?,
                fs1: parse_freg(args[1], line)?,
                fs2: parse_freg(args[2], line)?,
            },
            None,
            line,
        );
        return Ok(());
    }
    let fcmps: &[(&str, FpCmpCond)] = &[
        ("feq", FpCmpCond::Eq),
        ("flt", FpCmpCond::Lt),
        ("fle", FpCmpCond::Le),
    ];
    if let Some(&(_, cond)) = fcmps.iter().find(|&&(m, _)| m == mn) {
        need(3)?;
        push(
            items,
            Instr::FpCmp {
                cond,
                rd: parse_reg(args[0], line)?,
                fs1: parse_freg(args[1], line)?,
                fs2: parse_freg(args[2], line)?,
            },
            None,
            line,
        );
        return Ok(());
    }

    match mn {
        "lui" => {
            need(2)?;
            push(
                items,
                Instr::Lui {
                    rd: parse_reg(args[0], line)?,
                    imm: parse_u32(args[1], line)?,
                },
                None,
                line,
            );
        }
        "jal" => {
            let (rd, target) = match argc {
                1 => (Reg::LINK, args[0]),
                2 => (parse_reg(args[0], line)?, args[1]),
                _ => return err(line, "`jal` expects 1 or 2 operands"),
            };
            let (offset, patch) = parse_target(target, line)?;
            push(items, Instr::Jal { rd, offset }, patch, line);
        }
        "jalr" => {
            let (rd, mem) = match argc {
                1 => (Reg::LINK, args[0]),
                2 => (parse_reg(args[0], line)?, args[1]),
                _ => return err(line, "`jalr` expects 1 or 2 operands"),
            };
            let (offset, rs1) = if mem.contains('(') {
                parse_mem_operand(mem, line)?
            } else {
                (0, parse_reg(mem, line)?)
            };
            push(items, Instr::Jalr { rd, rs1, offset }, None, line);
        }
        "j" => {
            need(1)?;
            let (offset, patch) = parse_target(args[0], line)?;
            push(items, Instr::Jal { rd: Reg(0), offset }, patch, line);
        }
        "call" => {
            need(1)?;
            let (offset, patch) = parse_target(args[0], line)?;
            push(items, Instr::Jal { rd: Reg::LINK, offset }, patch, line);
        }
        "ret" => {
            need(0)?;
            push(
                items,
                Instr::Jalr {
                    rd: Reg(0),
                    rs1: Reg::LINK,
                    offset: 0,
                },
                None,
                line,
            );
        }
        "cvtsw" => {
            need(2)?;
            push(
                items,
                Instr::CvtSW {
                    fd: parse_freg(args[0], line)?,
                    rs1: parse_reg(args[1], line)?,
                },
                None,
                line,
            );
        }
        "cvtws" => {
            need(2)?;
            push(
                items,
                Instr::CvtWS {
                    rd: parse_reg(args[0], line)?,
                    fs1: parse_freg(args[1], line)?,
                },
                None,
                line,
            );
        }
        "flw" => {
            need(2)?;
            let (offset, rs1) = parse_mem_operand(args[1], line)?;
            push(
                items,
                Instr::FpLoad {
                    fd: parse_freg(args[0], line)?,
                    rs1,
                    offset,
                },
                None,
                line,
            );
        }
        "fsw" => {
            need(2)?;
            let (offset, rs1) = parse_mem_operand(args[1], line)?;
            push(
                items,
                Instr::FpStore {
                    fs2: parse_freg(args[0], line)?,
                    rs1,
                    offset,
                },
                None,
                line,
            );
        }
        "halt" => {
            need(0)?;
            push(items, Instr::Halt, None, line);
        }
        "syscall" => {
            need(0)?;
            push(items, Instr::Syscall, None, line);
        }
        // ---- pseudo-instructions ----
        "nop" => {
            need(0)?;
            push(items, Instr::NOP, None, line);
        }
        "mv" => {
            need(2)?;
            push(
                items,
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: parse_reg(args[0], line)?,
                    rs1: parse_reg(args[1], line)?,
                    imm: 0,
                },
                None,
                line,
            );
        }
        "subi" => {
            need(3)?;
            push(
                items,
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: parse_reg(args[0], line)?,
                    rs1: parse_reg(args[1], line)?,
                    imm: -(parse_i64(args[2], line)? as i32),
                },
                None,
                line,
            );
        }
        "neg" => {
            need(2)?;
            push(
                items,
                Instr::Alu {
                    op: AluOp::Sub,
                    rd: parse_reg(args[0], line)?,
                    rs1: Reg(0),
                    rs2: parse_reg(args[1], line)?,
                },
                None,
                line,
            );
        }
        "not" => {
            need(2)?;
            push(
                items,
                Instr::AluImm {
                    op: AluOp::Xor,
                    rd: parse_reg(args[0], line)?,
                    rs1: parse_reg(args[1], line)?,
                    imm: -1,
                },
                None,
                line,
            );
        }
        "li" => {
            need(2)?;
            let rd = parse_reg(args[0], line)?;
            let v = parse_i64(args[1], line)?;
            if !(i32::MIN as i64..=u32::MAX as i64).contains(&v) {
                return err(line, format!("`li` value {v} out of 32-bit range"));
            }
            let v = v as u32;
            let signed = v as i32;
            if (-8192..8192).contains(&signed) {
                push(
                    items,
                    Instr::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg(0),
                        imm: signed,
                    },
                    None,
                    line,
                );
            } else {
                push(
                    items,
                    Instr::Lui { rd, imm: v >> 13 },
                    None,
                    line,
                );
                push(
                    items,
                    Instr::AluImm {
                        op: AluOp::Or,
                        rd,
                        rs1: rd,
                        imm: (v & 0x1FFF) as i32,
                    },
                    None,
                    line,
                );
            }
        }
        "la" => {
            need(2)?;
            let rd = parse_reg(args[0], line)?;
            let label = args[1].trim();
            if !is_ident(label) {
                return err(line, format!("`la` expects a label, got `{label}`"));
            }
            push(
                items,
                Instr::Lui { rd, imm: 0 },
                Some(Patch::AbsHi(label.to_owned())),
                line,
            );
            push(
                items,
                Instr::AluImm {
                    op: AluOp::Or,
                    rd,
                    rs1: rd,
                    imm: 0,
                },
                Some(Patch::AbsLo(label.to_owned())),
                line,
            );
        }
        other => return err(line, format!("unknown mnemonic `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    #[test]
    fn assembles_loop_with_labels() {
        let src = r"
            .org 0x1000
            .entry main
        main:
            li   r1, 3
        loop:
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        ";
        let p = assemble(src, 0).unwrap();
        assert_eq!(p.base, 0x1000);
        assert_eq!(p.entry, 0x1000);
        assert_eq!(p.symbol("loop"), Some(0x1004));
        assert_eq!(p.words.len(), 4);
        let bne = decode(p.words[2]).unwrap();
        assert_eq!(
            bne,
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg(1),
                rs2: Reg(0),
                offset: -4
            }
        );
    }

    #[test]
    fn li_expands_by_size() {
        let p = assemble("li r1, 100\nli r2, 100000\n", 0).unwrap();
        assert_eq!(p.words.len(), 3);
        assert_eq!(
            decode(p.words[0]).unwrap(),
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 100
            }
        );
        assert_eq!(
            decode(p.words[1]).unwrap(),
            Instr::Lui {
                rd: Reg(2),
                imm: 100000 >> 13
            }
        );
        assert_eq!(
            decode(p.words[2]).unwrap(),
            Instr::AluImm {
                op: AluOp::Or,
                rd: Reg(2),
                rs1: Reg(2),
                imm: 100000 & 0x1FFF
            }
        );
    }

    #[test]
    fn li_negative_small() {
        let p = assemble("li r1, -5", 0).unwrap();
        assert_eq!(
            decode(p.words[0]).unwrap(),
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: -5
            }
        );
    }

    #[test]
    fn la_resolves_forward_data_labels() {
        let src = "
            la r1, data
            halt
        data:
            .word 0xCAFE
        ";
        let p = assemble(src, 0x2000).unwrap();
        let addr = p.symbol("data").unwrap();
        assert_eq!(addr, 0x200C);
        let lui = decode(p.words[0]).unwrap();
        let ori = decode(p.words[1]).unwrap();
        assert_eq!(lui, Instr::Lui { rd: Reg(1), imm: addr >> 13 });
        assert_eq!(
            ori,
            Instr::AluImm {
                op: AluOp::Or,
                rd: Reg(1),
                rs1: Reg(1),
                imm: (addr & 0x1FFF) as i32
            }
        );
        assert_eq!(p.words[3], 0xCAFE);
    }

    #[test]
    fn space_emits_zero_words() {
        let p = assemble(".space 8\n.word 1\n", 0).unwrap();
        assert_eq!(p.words, vec![0, 0, 1]);
    }

    #[test]
    fn register_aliases() {
        let p = assemble("add sp, ra, zero", 0).unwrap();
        assert_eq!(
            decode(p.words[0]).unwrap(),
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::SP,
                rs1: Reg::LINK,
                rs2: Reg(0)
            }
        );
    }

    #[test]
    fn pseudos_expand() {
        let p = assemble("nop\nmv r1, r2\nsubi r3, r4, 5\nneg r5, r6\nnot r7, r8\nret\nj 8\ncall 8\n", 0)
            .unwrap();
        assert_eq!(p.words.len(), 8);
        assert_eq!(
            decode(p.words[5]).unwrap(),
            Instr::Jalr {
                rd: Reg(0),
                rs1: Reg::LINK,
                offset: 0
            }
        );
        assert_eq!(decode(p.words[6]).unwrap(), Instr::Jal { rd: Reg(0), offset: 8 });
        assert_eq!(
            decode(p.words[7]).unwrap(),
            Instr::Jal {
                rd: Reg::LINK,
                offset: 8
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1, r2\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = assemble("addi r1, r1\n", 0).unwrap_err();
        assert!(e.message.contains("expects 3"));
        let e = assemble("beq r1, r0, nowhere\n", 0).unwrap_err();
        assert!(e.message.contains("undefined label"));
        let e = assemble("lw r1, r2\n", 0).unwrap_err();
        assert!(e.message.contains("offset(reg)"));
        let e = assemble("x:\nx:\n", 0).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; header\n  # note\nnop ; trailing\n", 0).unwrap();
        assert_eq!(p.words.len(), 1);
    }

    #[test]
    fn fp_instructions_assemble() {
        let src = "fadd f1, f2, f3\nflt r1, f2, f3\ncvtsw f1, r2\ncvtws r3, f4\nflw f5, 4(r6)\nfsw f7, -4(r8)\n";
        let p = assemble(src, 0).unwrap();
        assert_eq!(p.words.len(), 6);
        assert_eq!(
            decode(p.words[0]).unwrap(),
            Instr::Fpu {
                op: FpuOp::FAdd,
                fd: FReg(1),
                fs1: FReg(2),
                fs2: FReg(3)
            }
        );
        assert_eq!(
            decode(p.words[4]).unwrap(),
            Instr::FpLoad {
                fd: FReg(5),
                rs1: Reg(6),
                offset: 4
            }
        );
    }
}
