//! Architectural state and single-instruction functional execution.
//!
//! [`execute`] is the single source of truth for MiniRISC semantics: the
//! functional ISS, the OSM micro-architecture models and the hardware-centric
//! baseline all call it, so their *functional* behaviour is identical by
//! construction and validation compares only *timing*.

use crate::instr::{AluOp, Instr, MemWidth, MulOp};
use crate::mem::Memory;
use crate::persist::{put_u32, StateReader};
use crate::reg::{FReg, Reg};

/// Architectural register state.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuState {
    gpr: [u32; 32],
    fpr: [f32; 32],
    /// Program counter (address of the instruction being executed).
    pub pc: u32,
}

impl CpuState {
    /// Creates a zeroed CPU with the given entry point.
    pub fn new(entry: u32) -> Self {
        CpuState {
            gpr: [0; 32],
            fpr: [0.0; 32],
            pc: entry,
        }
    }

    /// Reads a GPR (`r0` always reads zero).
    #[inline]
    pub fn gpr(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.gpr[r.index()]
        }
    }

    /// Writes a GPR (writes to `r0` are ignored).
    #[inline]
    pub fn set_gpr(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.gpr[r.index()] = v;
        }
    }

    /// Reads an FPR.
    #[inline]
    pub fn fpr(&self, r: FReg) -> f32 {
        self.fpr[r.index()]
    }

    /// Writes an FPR.
    #[inline]
    pub fn set_fpr(&mut self, r: FReg, v: f32) {
        self.fpr[r.index()] = v;
    }

    /// Serializes the register file and PC as a fixed-size little-endian
    /// byte string (FPRs by their IEEE-754 bit patterns, so NaN payloads
    /// round-trip exactly).
    pub fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 * 4 + 32 * 4 + 4);
        for v in self.gpr {
            put_u32(&mut out, v);
        }
        for v in self.fpr {
            put_u32(&mut out, v.to_bits());
        }
        put_u32(&mut out, self.pc);
        out
    }

    /// Restores state written by [`CpuState::export_state`]. Returns `false`
    /// — leaving `self` untouched — on any size mismatch or a nonzero `r0`.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = StateReader::new(bytes);
        let mut gpr = [0u32; 32];
        for slot in &mut gpr {
            let Some(v) = r.take_u32() else { return false };
            *slot = v;
        }
        if gpr[0] != 0 {
            return false; // r0 is architecturally zero
        }
        let mut fpr = [0f32; 32];
        for slot in &mut fpr {
            let Some(v) = r.take_u32() else { return false };
            *slot = f32::from_bits(v);
        }
        let Some(pc) = r.take_u32() else { return false };
        if !r.is_done() {
            return false;
        }
        self.gpr = gpr;
        self.fpr = fpr;
        self.pc = pc;
        true
    }
}

impl Default for CpuState {
    fn default() -> Self {
        CpuState::new(0)
    }
}

/// Control-flow outcome of executing one instruction. The caller advances
/// the PC: [`Outcome::Next`] means `pc + 4`, [`Outcome::Taken`] carries the
/// target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fall through to the next instruction.
    Next,
    /// Control transfers to the given address.
    Taken(u32),
    /// The machine halts.
    Halt,
    /// An environment call; the platform handles it, then falls through.
    Syscall,
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
    }
}

fn mul(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        MulOp::Div => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                u32::MAX
            } else if a == i32::MIN && b == -1 {
                a as u32 // overflow wraps
            } else {
                (a / b) as u32
            }
        }
        MulOp::Rem => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                a as u32
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                (a % b) as u32
            }
        }
    }
}

/// The effective address of a memory instruction, or `None` for non-memory
/// instructions. Micro-architecture models use this at their address-
/// generation stage.
pub fn effective_address(instr: Instr, cpu: &CpuState) -> Option<u32> {
    match instr {
        Instr::Load { rs1, offset, .. }
        | Instr::Store { rs1, offset, .. }
        | Instr::FpLoad { rs1, offset, .. }
        | Instr::FpStore { rs1, offset, .. } => {
            Some(cpu.gpr(rs1).wrapping_add(offset as u32))
        }
        _ => None,
    }
}

/// Executes one instruction at `cpu.pc`, applying register and memory side
/// effects, and returns the control-flow outcome. Does **not** advance `pc`.
pub fn execute<M: Memory>(instr: Instr, cpu: &mut CpuState, mem: &mut M) -> Outcome {
    match instr {
        Instr::Halt => return Outcome::Halt,
        Instr::Syscall => return Outcome::Syscall,
        Instr::Alu { op, rd, rs1, rs2 } => {
            let v = alu(op, cpu.gpr(rs1), cpu.gpr(rs2));
            cpu.set_gpr(rd, v);
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let v = alu(op, cpu.gpr(rs1), imm as u32);
            cpu.set_gpr(rd, v);
        }
        Instr::Lui { rd, imm } => cpu.set_gpr(rd, imm << 13),
        Instr::Mul { op, rd, rs1, rs2 } => {
            let v = mul(op, cpu.gpr(rs1), cpu.gpr(rs2));
            cpu.set_gpr(rd, v);
        }
        Instr::Load {
            width,
            unsigned,
            rd,
            rs1,
            offset,
        } => {
            let addr = cpu.gpr(rs1).wrapping_add(offset as u32);
            let v = match (width, unsigned) {
                (MemWidth::Word, _) => mem.read_u32(addr),
                (MemWidth::Half, true) => mem.read_u16(addr) as u32,
                (MemWidth::Half, false) => mem.read_u16(addr) as i16 as i32 as u32,
                (MemWidth::Byte, true) => mem.read_u8(addr) as u32,
                (MemWidth::Byte, false) => mem.read_u8(addr) as i8 as i32 as u32,
            };
            cpu.set_gpr(rd, v);
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let addr = cpu.gpr(rs1).wrapping_add(offset as u32);
            let v = cpu.gpr(rs2);
            match width {
                MemWidth::Word => mem.write_u32(addr, v),
                MemWidth::Half => mem.write_u16(addr, v as u16),
                MemWidth::Byte => mem.write_u8(addr, v as u8),
            }
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            if cond.eval(cpu.gpr(rs1), cpu.gpr(rs2)) {
                return Outcome::Taken(cpu.pc.wrapping_add(offset as u32));
            }
        }
        Instr::Jal { rd, offset } => {
            cpu.set_gpr(rd, cpu.pc.wrapping_add(4));
            return Outcome::Taken(cpu.pc.wrapping_add(offset as u32));
        }
        Instr::Jalr { rd, rs1, offset } => {
            let target = cpu.gpr(rs1).wrapping_add(offset as u32) & !3;
            cpu.set_gpr(rd, cpu.pc.wrapping_add(4));
            return Outcome::Taken(target);
        }
        Instr::Fpu { op, fd, fs1, fs2 } => {
            let (a, b) = (cpu.fpr(fs1), cpu.fpr(fs2));
            let v = match op {
                crate::instr::FpuOp::FAdd => a + b,
                crate::instr::FpuOp::FSub => a - b,
                crate::instr::FpuOp::FMul => a * b,
                crate::instr::FpuOp::FDiv => a / b,
            };
            cpu.set_fpr(fd, v);
        }
        Instr::FpCmp {
            cond,
            rd,
            fs1,
            fs2,
        } => {
            let v = cond.eval(cpu.fpr(fs1), cpu.fpr(fs2)) as u32;
            cpu.set_gpr(rd, v);
        }
        Instr::CvtSW { fd, rs1 } => cpu.set_fpr(fd, cpu.gpr(rs1) as i32 as f32),
        Instr::CvtWS { rd, fs1 } => cpu.set_gpr(rd, cpu.fpr(fs1) as i32 as u32),
        Instr::FpLoad { fd, rs1, offset } => {
            let addr = cpu.gpr(rs1).wrapping_add(offset as u32);
            cpu.set_fpr(fd, f32::from_bits(mem.read_u32(addr)));
        }
        Instr::FpStore { fs2, rs1, offset } => {
            let addr = cpu.gpr(rs1).wrapping_add(offset as u32);
            mem.write_u32(addr, cpu.fpr(fs2).to_bits());
        }
    }
    Outcome::Next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchCond, FpCmpCond, FpuOp};
    use crate::mem::SparseMemory;

    fn setup() -> (CpuState, SparseMemory) {
        (CpuState::new(0x1000), SparseMemory::new())
    }

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let (mut cpu, mut mem) = setup();
        cpu.set_gpr(Reg(0), 99);
        assert_eq!(cpu.gpr(Reg(0)), 0);
        let out = execute(
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(0),
                rs1: Reg(0),
                imm: 5,
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(out, Outcome::Next);
        assert_eq!(cpu.gpr(Reg(0)), 0);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 3, 5), (-2i32) as u32);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), 0xFFFF_FFFF);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Slt, (-1i32) as u32, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i32) as u32, 0), 0);
        assert_eq!(alu(AluOp::Sll, 1, 33), 2); // shift amount masked
    }

    #[test]
    fn mul_div_edge_cases() {
        assert_eq!(mul(MulOp::Mul, 0x1_0000, 0x1_0000), 0);
        assert_eq!(mul(MulOp::Mulh, 0x1_0000, 0x1_0000), 1);
        assert_eq!(mul(MulOp::Div, 7, 0), u32::MAX);
        assert_eq!(mul(MulOp::Rem, 7, 0), 7);
        assert_eq!(mul(MulOp::Div, i32::MIN as u32, (-1i32) as u32), i32::MIN as u32);
        assert_eq!(mul(MulOp::Rem, i32::MIN as u32, (-1i32) as u32), 0);
        assert_eq!(mul(MulOp::Mulh, (-2i32) as u32, 3), u32::MAX); // -6 >> 32
    }

    #[test]
    fn load_store_widths_and_sign_extension() {
        let (mut cpu, mut mem) = setup();
        cpu.set_gpr(Reg(1), 0x2000);
        mem.write_u32(0x2000, 0xFFFF_FF80);
        for (instr, expect) in [
            (
                Instr::Load {
                    width: MemWidth::Byte,
                    unsigned: false,
                    rd: Reg(2),
                    rs1: Reg(1),
                    offset: 0,
                },
                0xFFFF_FF80u32,
            ),
            (
                Instr::Load {
                    width: MemWidth::Byte,
                    unsigned: true,
                    rd: Reg(2),
                    rs1: Reg(1),
                    offset: 0,
                },
                0x80,
            ),
            (
                Instr::Load {
                    width: MemWidth::Half,
                    unsigned: false,
                    rd: Reg(2),
                    rs1: Reg(1),
                    offset: 0,
                },
                0xFFFF_FF80,
            ),
            (
                Instr::Load {
                    width: MemWidth::Word,
                    unsigned: false,
                    rd: Reg(2),
                    rs1: Reg(1),
                    offset: 0,
                },
                0xFFFF_FF80,
            ),
        ] {
            execute(instr, &mut cpu, &mut mem);
            assert_eq!(cpu.gpr(Reg(2)), expect, "{instr}");
        }
        cpu.set_gpr(Reg(3), 0xAB);
        execute(
            Instr::Store {
                width: MemWidth::Byte,
                rs2: Reg(3),
                rs1: Reg(1),
                offset: 4,
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(mem.read_u8(0x2004), 0xAB);
    }

    #[test]
    fn branches_are_pc_relative() {
        let (mut cpu, mut mem) = setup();
        cpu.set_gpr(Reg(1), 5);
        cpu.set_gpr(Reg(2), 5);
        let out = execute(
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg(1),
                rs2: Reg(2),
                offset: -8,
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(out, Outcome::Taken(0x0FF8));
        let out = execute(
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg(1),
                rs2: Reg(2),
                offset: -8,
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(out, Outcome::Next);
    }

    #[test]
    fn jal_links_and_jumps() {
        let (mut cpu, mut mem) = setup();
        let out = execute(
            Instr::Jal {
                rd: Reg(31),
                offset: 16,
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(out, Outcome::Taken(0x1010));
        assert_eq!(cpu.gpr(Reg(31)), 0x1004);
        cpu.set_gpr(Reg(5), 0x3001); // misaligned base gets masked
        let out = execute(
            Instr::Jalr {
                rd: Reg(0),
                rs1: Reg(5),
                offset: 2,
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(out, Outcome::Taken(0x3000));
    }

    #[test]
    fn fp_ops_and_conversion() {
        let (mut cpu, mut mem) = setup();
        cpu.set_gpr(Reg(1), 7);
        execute(Instr::CvtSW { fd: FReg(1), rs1: Reg(1) }, &mut cpu, &mut mem);
        assert_eq!(cpu.fpr(FReg(1)), 7.0);
        cpu.set_fpr(FReg(2), 2.0);
        execute(
            Instr::Fpu {
                op: FpuOp::FDiv,
                fd: FReg(3),
                fs1: FReg(1),
                fs2: FReg(2),
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(cpu.fpr(FReg(3)), 3.5);
        execute(Instr::CvtWS { rd: Reg(4), fs1: FReg(3) }, &mut cpu, &mut mem);
        assert_eq!(cpu.gpr(Reg(4)), 3); // truncation
        execute(
            Instr::FpCmp {
                cond: FpCmpCond::Lt,
                rd: Reg(5),
                fs1: FReg(2),
                fs2: FReg(1),
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(cpu.gpr(Reg(5)), 1);
    }

    #[test]
    fn fp_load_store_roundtrip_bits() {
        let (mut cpu, mut mem) = setup();
        cpu.set_gpr(Reg(1), 0x4000);
        cpu.set_fpr(FReg(1), 1.5);
        execute(
            Instr::FpStore {
                fs2: FReg(1),
                rs1: Reg(1),
                offset: 0,
            },
            &mut cpu,
            &mut mem,
        );
        execute(
            Instr::FpLoad {
                fd: FReg(2),
                rs1: Reg(1),
                offset: 0,
            },
            &mut cpu,
            &mut mem,
        );
        assert_eq!(cpu.fpr(FReg(2)), 1.5);
    }

    #[test]
    fn effective_address_for_memory_ops_only() {
        let mut cpu = CpuState::new(0);
        cpu.set_gpr(Reg(1), 100);
        let i = Instr::Load {
            width: MemWidth::Word,
            unsigned: false,
            rd: Reg(2),
            rs1: Reg(1),
            offset: -4,
        };
        assert_eq!(effective_address(i, &cpu), Some(96));
        assert_eq!(effective_address(Instr::NOP, &cpu), None);
    }

    #[test]
    fn halt_and_syscall_outcomes() {
        let (mut cpu, mut mem) = setup();
        assert_eq!(execute(Instr::Halt, &mut cpu, &mut mem), Outcome::Halt);
        assert_eq!(execute(Instr::Syscall, &mut cpu, &mut mem), Outcome::Syscall);
    }
}
