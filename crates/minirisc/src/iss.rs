//! The functional instruction-set simulator (ISS).
//!
//! The paper builds its micro-architecture models *on top of* existing ISSs
//! (§5); this interpreted ISS plays that role for MiniRISC-32. It executes
//! programs instruction-at-a-time with no timing, handles the syscall layer,
//! and exposes per-step events so lock-step co-simulation (used to validate
//! the micro-architecture models' functional behaviour) is possible.

use crate::encode::{decode, DecodeError};
use crate::exec::{execute, CpuState, Outcome};
use crate::instr::Instr;
use crate::mem::Memory;
use crate::persist::{put_bytes, put_u32, put_u64, put_u8, StateReader};
use crate::program::Program;
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Syscall numbers (in `r10`; argument in `r11`).
pub mod syscalls {
    /// Terminate; exit code in `r11`.
    pub const EXIT: u32 = 0;
    /// Append the low byte of `r11` to the output stream.
    pub const PUTCHAR: u32 = 1;
    /// Append `r11` as decimal text to the output stream.
    pub const PUTUINT: u32 = 2;
}

/// Errors during ISS execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssError {
    /// The fetched word does not decode.
    Decode {
        /// Faulting PC.
        pc: u32,
        /// Underlying decode error.
        cause: DecodeError,
    },
    /// Unknown syscall number.
    BadSyscall {
        /// Faulting PC.
        pc: u32,
        /// The number found in `r10`.
        number: u32,
    },
    /// `run` hit its step budget before the program halted.
    StepLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for IssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssError::Decode { pc, cause } => write!(f, "at {pc:#010x}: {cause}"),
            IssError::BadSyscall { pc, number } => {
                write!(f, "at {pc:#010x}: unknown syscall {number}")
            }
            IssError::StepLimit { limit } => write!(f, "step limit {limit} exhausted"),
        }
    }
}

impl Error for IssError {}

/// What one retired instruction did (for co-simulation and tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executed {
    /// Address the instruction was fetched from.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Control-transfer target if the instruction redirected fetch.
    pub taken: Option<u32>,
}

/// The interpreted instruction-set simulator.
#[derive(Debug, Clone)]
pub struct Iss<M> {
    /// Architectural state.
    pub cpu: CpuState,
    /// The memory (plain [`crate::SparseMemory`] or a timing hierarchy).
    pub mem: M,
    /// True once `halt` or an exit syscall retires.
    pub halted: bool,
    /// Exit code from the exit syscall (0 for `halt`).
    pub exit_code: u32,
    /// Retired instruction count.
    pub retired: u64,
    /// Bytes written through output syscalls.
    pub output: Vec<u8>,
}

impl<M: Memory> Iss<M> {
    /// Creates an ISS over `mem`, starting at `entry`.
    pub fn new(mem: M, entry: u32) -> Self {
        Iss {
            cpu: CpuState::new(entry),
            mem,
            halted: false,
            exit_code: 0,
            retired: 0,
            output: Vec::new(),
        }
    }

    /// Convenience: load `program` into `mem` and start at its entry point.
    pub fn with_program(mut mem: M, program: &Program) -> Self {
        program.load_into(&mut mem);
        Self::new(mem, program.entry)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    /// Returns [`IssError::Decode`] or [`IssError::BadSyscall`]. After an
    /// error or halt, further `step`s return the halt state unchanged.
    pub fn step(&mut self) -> Result<Executed, IssError> {
        let pc = self.cpu.pc;
        if self.halted {
            return Ok(Executed {
                pc,
                instr: Instr::Halt,
                taken: None,
            });
        }
        let word = self.mem.read_u32(pc);
        let instr = decode(word).map_err(|cause| IssError::Decode { pc, cause })?;
        let outcome = execute(instr, &mut self.cpu, &mut self.mem);
        let taken = match outcome {
            Outcome::Next => {
                self.cpu.pc = pc.wrapping_add(4);
                None
            }
            Outcome::Taken(t) => {
                self.cpu.pc = t;
                Some(t)
            }
            Outcome::Halt => {
                self.halted = true;
                None
            }
            Outcome::Syscall => {
                self.handle_syscall(pc)?;
                if !self.halted {
                    self.cpu.pc = pc.wrapping_add(4);
                }
                None
            }
        };
        self.retired += 1;
        Ok(Executed { pc, instr, taken })
    }

    fn handle_syscall(&mut self, pc: u32) -> Result<(), IssError> {
        let number = self.cpu.gpr(Reg(10));
        let arg = self.cpu.gpr(Reg(11));
        match number {
            syscalls::EXIT => {
                self.halted = true;
                self.exit_code = arg;
            }
            syscalls::PUTCHAR => self.output.push(arg as u8),
            syscalls::PUTUINT => self.output.extend_from_slice(arg.to_string().as_bytes()),
            other => return Err(IssError::BadSyscall { pc, number: other }),
        }
        Ok(())
    }

    /// Runs until halt or `max_steps`.
    ///
    /// # Errors
    /// Returns [`IssError::StepLimit`] if the budget is exhausted, or any
    /// step error.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, IssError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= max_steps {
                return Err(IssError::StepLimit { limit: max_steps });
            }
            self.step()?;
        }
        Ok(self.retired - start)
    }

    /// The output stream as UTF-8 (lossy).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

impl Iss<crate::mem::SparseMemory> {
    /// Serializes the complete simulator state (CPU, sparse memory, halt
    /// latch, exit code, retired count, output stream) so an interrupted
    /// functional run can continue from the exact instruction boundary.
    pub fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, &self.cpu.export_state());
        put_bytes(&mut out, &self.mem.export_state());
        put_u8(&mut out, self.halted as u8);
        put_u32(&mut out, self.exit_code);
        put_u64(&mut out, self.retired);
        put_bytes(&mut out, &self.output);
        out
    }

    /// Restores state written by [`Iss::export_state`]. All-or-nothing:
    /// returns `false` and leaves `self` untouched on any malformed input.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = StateReader::new(bytes);
        let (Some(cpu_bytes), Some(mem_bytes)) = (r.take_bytes(), r.take_bytes()) else {
            return false;
        };
        let (Some(halted), Some(exit_code), Some(retired), Some(output)) =
            (r.take_u8(), r.take_u32(), r.take_u64(), r.take_bytes())
        else {
            return false;
        };
        if halted > 1 || !r.is_done() {
            return false;
        }
        let mut cpu = self.cpu.clone();
        let mut mem = crate::mem::SparseMemory::new();
        if !cpu.import_state(cpu_bytes) || !mem.import_state(mem_bytes) {
            return false;
        }
        self.cpu = cpu;
        self.mem = mem;
        self.halted = halted == 1;
        self.exit_code = exit_code;
        self.retired = retired;
        self.output = output.to_vec();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::mem::SparseMemory;

    fn run_asm(src: &str) -> Iss<SparseMemory> {
        let p = assemble(src, 0x1000).expect("assembles");
        let mut iss = Iss::with_program(SparseMemory::new(), &p);
        iss.run(1_000_000).expect("runs");
        iss
    }

    #[test]
    fn computes_a_sum_loop() {
        let iss = run_asm(
            "
            li r1, 10      ; n
            li r2, 0       ; acc
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 0      ; exit
            add r11, r2, r0
            syscall
        ",
        );
        assert!(iss.halted);
        assert_eq!(iss.exit_code, 55);
    }

    #[test]
    fn halt_stops_without_syscall() {
        let iss = run_asm("li r1, 1\nhalt\n");
        assert!(iss.halted);
        assert_eq!(iss.exit_code, 0);
        assert_eq!(iss.retired, 2);
    }

    #[test]
    fn putchar_and_putuint_build_output() {
        let iss = run_asm(
            "
            li r10, 1
            li r11, 72    ; 'H'
            syscall
            li r10, 2
            li r11, 42
            syscall
            halt
        ",
        );
        assert_eq!(iss.output_string(), "H42");
    }

    #[test]
    fn memory_program_store_load() {
        let iss = run_asm(
            "
            la r1, buf
            li r2, 1234
            sw r2, 0(r1)
            lw r3, 0(r1)
            li r10, 0
            add r11, r3, r0
            syscall
        buf:
            .space 4
        ",
        );
        assert_eq!(iss.exit_code, 1234);
    }

    #[test]
    fn function_call_and_return() {
        let iss = run_asm(
            "
            li r1, 20
            call double
            li r10, 0
            add r11, r1, r0
            syscall
        double:
            add r1, r1, r1
            ret
        ",
        );
        assert_eq!(iss.exit_code, 40);
    }

    #[test]
    fn bad_syscall_reported() {
        let p = assemble("li r10, 99\nsyscall\n", 0).unwrap();
        let mut iss = Iss::with_program(SparseMemory::new(), &p);
        let e = iss.run(100).unwrap_err();
        assert!(matches!(e, IssError::BadSyscall { number: 99, .. }));
    }

    #[test]
    fn decode_error_reported() {
        let mut mem = SparseMemory::new();
        mem.write_u32(0, 0xFF00_0000);
        let mut iss = Iss::new(mem, 0);
        let e = iss.step().unwrap_err();
        assert!(matches!(e, IssError::Decode { pc: 0, .. }));
    }

    #[test]
    fn step_limit_reported() {
        let p = assemble("loop: j loop\n", 0).unwrap();
        let mut iss = Iss::with_program(SparseMemory::new(), &p);
        let e = iss.run(10).unwrap_err();
        assert!(matches!(e, IssError::StepLimit { limit: 10 }));
    }

    #[test]
    fn steps_after_halt_are_inert() {
        let mut iss = run_asm("halt\n");
        let retired = iss.retired;
        iss.step().unwrap();
        assert_eq!(iss.retired, retired);
    }

    #[test]
    fn state_round_trip_continues_mid_run() {
        let p = assemble(
            "
            li r1, 10      ; n
            li r2, 0       ; acc
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            li r10, 2      ; putuint
            add r11, r2, r0
            syscall
            li r10, 0      ; exit
            syscall
        ",
            0x1000,
        )
        .unwrap();
        let mut reference = Iss::with_program(SparseMemory::new(), &p);
        reference.run(1000).unwrap();

        let mut head = Iss::with_program(SparseMemory::new(), &p);
        for _ in 0..7 {
            head.step().unwrap();
        }
        let bytes = head.export_state();
        drop(head);

        // A fresh ISS over a fresh memory, rebuilt purely from the bytes.
        let mut tail = Iss::new(SparseMemory::new(), 0);
        assert!(tail.import_state(&bytes));
        assert_eq!(tail.retired, 7);
        tail.run(1000).unwrap();
        assert_eq!(tail.retired, reference.retired);
        assert_eq!(tail.exit_code, reference.exit_code);
        assert_eq!(tail.output, reference.output);
        assert_eq!(tail.cpu, reference.cpu);
    }

    #[test]
    fn import_rejects_damage() {
        let p = assemble("li r1, 1\nhalt\n", 0).unwrap();
        let mut iss = Iss::with_program(SparseMemory::new(), &p);
        iss.step().unwrap();
        let bytes = iss.export_state();
        let before = iss.cpu.clone();

        assert!(!iss.import_state(&bytes[..bytes.len() - 1]));
        let mut long = bytes.clone();
        long.push(0);
        assert!(!iss.import_state(&long));
        // Corrupt r0 (first GPR of the length-prefixed CPU section).
        let mut bad = bytes.clone();
        bad[4] = 1;
        assert!(!iss.import_state(&bad));
        assert_eq!(iss.cpu, before);
    }

    #[test]
    fn sparse_memory_export_is_canonical() {
        // Same contents, different insertion order → identical bytes.
        let mut a = SparseMemory::new();
        a.write_u32(0x1000, 7);
        a.write_u32(0x9000, 9);
        let mut b = SparseMemory::new();
        b.write_u32(0x9000, 9);
        b.write_u32(0x1000, 7);
        assert_eq!(a.export_state(), b.export_state());

        let mut c = SparseMemory::new();
        assert!(c.import_state(&a.export_state()));
        assert_eq!(c.read_u32(0x9000), 9);
        assert_eq!(c.page_count(), 2);
        assert!(!c.import_state(&a.export_state()[..10]));
    }

    #[test]
    fn fp_program_runs() {
        let iss = run_asm(
            "
            li r1, 3
            li r2, 4
            cvtsw f1, r1
            cvtsw f2, r2
            fmul f3, f1, f2
            cvtws r3, f3
            li r10, 0
            add r11, r3, r0
            syscall
        ",
        );
        assert_eq!(iss.exit_code, 12);
    }
}
