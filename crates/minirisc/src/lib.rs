//! # minirisc — the MiniRISC-32 instruction set substrate
//!
//! A from-scratch 32-bit load/store ISA standing in for the ARM and PowerPC
//! binaries of the OSM paper's evaluation (the substitution is documented in
//! the repository's `DESIGN.md`). The crate provides:
//!
//! * the instruction set ([`Instr`]) with decode metadata
//!   ([`Instr::class`], [`Instr::dest`], [`Instr::sources`]) that
//!   micro-architecture models use to initialize OSM token identifiers;
//! * binary [`encode`]/[`decode`];
//! * a two-pass [`assemble`]r with labels, directives and pseudo-instructions;
//! * the architectural state ([`CpuState`]) and one-instruction functional
//!   [`execute`] shared by every simulator in the workspace;
//! * a functional instruction-set simulator ([`Iss`]) with a syscall layer;
//! * the [`Memory`] abstraction and a [`SparseMemory`] backing store.
//!
//! ```
//! use minirisc::{assemble, Iss, SparseMemory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("li r11, 7\nli r10, 0\nsyscall\n", 0x1000)?;
//! let mut iss = Iss::with_program(SparseMemory::new(), &program);
//! iss.run(1000)?;
//! assert_eq!(iss.exit_code, 7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod encode;
mod exec;
mod instr;
mod iss;
mod mem;
mod persist;
mod program;
mod reg;

pub use asm::{assemble, AsmError};
pub use encode::{decode, encode, DecodeError, EncodeError};
pub use exec::{effective_address, execute, CpuState, Outcome};
pub use instr::{AluOp, BranchCond, FpCmpCond, FpuOp, Instr, InstrClass, MemWidth, MulOp};
pub use iss::{syscalls, Executed, Iss, IssError};
pub use mem::{Memory, SparseMemory};
pub use program::Program;
pub use reg::{ArchReg, FReg, Reg};
