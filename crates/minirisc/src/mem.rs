//! Byte-addressable memory abstraction and a sparse backing store.

use crate::persist::{put_u32, StateReader};
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A byte-addressable, little-endian memory.
///
/// Accessors take `&mut self` because timing memories (caches, TLBs) update
/// internal state on reads. Multi-byte accessors have default compositions
/// from bytes; implementors may override them for speed.
pub trait Memory {
    /// Reads one byte.
    fn read_u8(&mut self, addr: u32) -> u8;

    /// Writes one byte.
    fn write_u8(&mut self, addr: u32, value: u8);

    /// Reads a little-endian 16-bit value.
    fn read_u16(&mut self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian 16-bit value.
    fn write_u16(&mut self, addr: u32, value: u16) {
        let b = value.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr.wrapping_add(1), b[1]);
    }

    /// Reads a little-endian 32-bit value.
    fn read_u32(&mut self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian 32-bit value.
    fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }
}

impl<M: Memory + ?Sized> Memory for &mut M {
    fn read_u8(&mut self, addr: u32) -> u8 {
        (**self).read_u8(addr)
    }
    fn write_u8(&mut self, addr: u32, value: u8) {
        (**self).write_u8(addr, value)
    }
    fn read_u16(&mut self, addr: u32) -> u16 {
        (**self).read_u16(addr)
    }
    fn write_u16(&mut self, addr: u32, value: u16) {
        (**self).write_u16(addr, value)
    }
    fn read_u32(&mut self, addr: u32) -> u32 {
        (**self).read_u32(addr)
    }
    fn write_u32(&mut self, addr: u32, value: u32) {
        (**self).write_u32(addr, value)
    }
}

/// Sparse page-table-backed memory: pages materialize on first touch,
/// reading unwritten memory yields zero.
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized pages (for footprint diagnostics).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Serializes every materialized page, *sorted by page number* so two
    /// memories with equal contents export byte-identical state regardless
    /// of the hash map's insertion history.
    pub fn export_state(&self) -> Vec<u8> {
        let mut numbers: Vec<u32> = self.pages.keys().copied().collect();
        numbers.sort_unstable();
        let mut out = Vec::with_capacity(4 + numbers.len() * (4 + PAGE_SIZE));
        put_u32(&mut out, numbers.len() as u32);
        for n in numbers {
            put_u32(&mut out, n);
            out.extend_from_slice(&self.pages[&n][..]);
        }
        out
    }

    /// Replaces the entire contents with state written by
    /// [`SparseMemory::export_state`]. Returns `false` — leaving `self`
    /// untouched — if the bytes are truncated, carry trailing garbage, or
    /// repeat a page number.
    pub fn import_state(&mut self, bytes: &[u8]) -> bool {
        let mut r = StateReader::new(bytes);
        let Some(count) = r.take_u32() else { return false };
        let mut pages = HashMap::with_capacity(count as usize);
        for _ in 0..count {
            let (Some(n), Some(data)) = (r.take_u32(), r.take(PAGE_SIZE)) else {
                return false;
            };
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(data);
            if pages.insert(n, page).is_some() {
                return false;
            }
        }
        if !r.is_done() {
            return false;
        }
        self.pages = pages;
        true
    }
}

impl Memory for SparseMemory {
    fn read_u8(&mut self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    fn read_u32(&mut self, addr: u32) -> u32 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    fn write_u32(&mut self, addr: u32, value: u32) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            let p = self.page_mut(addr);
            p[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut m = SparseMemory::new();
        assert_eq!(m.read_u8(0x1234), 0);
        assert_eq!(m.read_u32(0xFFFF_FFF0), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn byte_and_word_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(0x1000), 0xEF); // little-endian
        assert_eq!(m.read_u8(0x1003), 0xDE);
        m.write_u8(0x1001, 0x00);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_00EF);
        assert_eq!(m.page_count(), 1);
    }

    #[test]
    fn u16_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_u16(0x2002, 0xABCD);
        assert_eq!(m.read_u16(0x2002), 0xABCD);
        assert_eq!(m.read_u8(0x2002), 0xCD);
    }

    #[test]
    fn cross_page_word_access() {
        let mut m = SparseMemory::new();
        let addr = (1 << PAGE_BITS) - 2; // straddles page 0 and 1
        m.write_u32(addr, 0x0102_0304);
        assert_eq!(m.read_u32(addr), 0x0102_0304);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn mut_ref_is_a_memory() {
        fn takes_mem<M: Memory>(mut m: M) -> u32 {
            m.write_u32(4, 7);
            m.read_u32(4)
        }
        let mut m = SparseMemory::new();
        assert_eq!(takes_mem(&mut m), 7);
        assert_eq!(m.read_u32(4), 7);
    }
}
