//! Binary encoding and decoding of MiniRISC-32 instructions.
//!
//! All instructions are 32 bits:
//!
//! ```text
//! R-type:  | op(8) | A(5) | B(5) | C(5) |  pad(9)  |
//! I-type:  | op(8) | A(5) | B(5) |     imm14       |
//! J-type:  | op(8) | A(5) |        imm19           |
//! ```
//!
//! Branch and `jal` offsets are stored in units of 4 bytes (instructions),
//! extending their reach; `jalr`, loads and stores use byte offsets.

use crate::instr::{AluOp, BranchCond, FpCmpCond, FpuOp, Instr, MemWidth, MulOp};
use crate::reg::{FReg, Reg};
use std::error::Error;
use std::fmt;

const OP_HALT: u8 = 0x00;
const OP_SYSCALL: u8 = 0x01;
const OP_ALU: u8 = 0x10;
const OP_ALUI: u8 = 0x20;
const OP_LUI: u8 = 0x2F;
const OP_MUL: u8 = 0x30;
const OP_LW: u8 = 0x40;
const OP_LH: u8 = 0x41;
const OP_LHU: u8 = 0x42;
const OP_LB: u8 = 0x43;
const OP_LBU: u8 = 0x44;
const OP_SW: u8 = 0x48;
const OP_SH: u8 = 0x49;
const OP_SB: u8 = 0x4A;
const OP_BRANCH: u8 = 0x50;
const OP_JAL: u8 = 0x58;
const OP_JALR: u8 = 0x59;
const OP_FPU: u8 = 0x60;
const OP_FCMP: u8 = 0x68;
const OP_CVTSW: u8 = 0x6C;
const OP_CVTWS: u8 = 0x6D;
const OP_FLW: u8 = 0x70;
const OP_FSW: u8 = 0x71;

/// Errors from [`encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit its field.
    ImmOutOfRange {
        /// The offending value.
        value: i64,
        /// Field width in bits.
        bits: u32,
    },
    /// A branch/jump offset is not a multiple of 4.
    MisalignedOffset {
        /// The offending offset.
        offset: i32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} bits")
            }
            EncodeError::MisalignedOffset { offset } => {
                write!(f, "control-flow offset {offset} is not a multiple of 4")
            }
        }
    }
}

impl Error for EncodeError {}

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode {
        /// The opcode field.
        opcode: u8,
        /// The full word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { opcode, word } => {
                write!(f, "unknown opcode {opcode:#04x} in word {word:#010x}")
            }
        }
    }
}

impl Error for DecodeError {}

fn imm14(v: i32) -> Result<u32, EncodeError> {
    if (-(1 << 13)..(1 << 13)).contains(&v) {
        Ok((v as u32) & 0x3FFF)
    } else {
        Err(EncodeError::ImmOutOfRange {
            value: v as i64,
            bits: 14,
        })
    }
}

fn imm19s(v: i32) -> Result<u32, EncodeError> {
    if (-(1 << 18)..(1 << 18)).contains(&v) {
        Ok((v as u32) & 0x7FFFF)
    } else {
        Err(EncodeError::ImmOutOfRange {
            value: v as i64,
            bits: 19,
        })
    }
}

fn word_offset14(offset: i32) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { offset });
    }
    imm14(offset / 4)
}

fn word_offset19(offset: i32) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { offset });
    }
    imm19s(offset / 4)
}

fn sext14(v: u32) -> i32 {
    ((v & 0x3FFF) as i32) << 18 >> 18
}

fn sext19(v: u32) -> i32 {
    ((v & 0x7FFFF) as i32) << 13 >> 13
}

fn pack(op: u8, a: u8, b: u8, low: u32) -> u32 {
    ((op as u32) << 24) | ((a as u32 & 31) << 19) | ((b as u32 & 31) << 14) | (low & 0x3FFF)
}

fn pack_j(op: u8, a: u8, imm19: u32) -> u32 {
    ((op as u32) << 24) | ((a as u32 & 31) << 19) | (imm19 & 0x7FFFF)
}

fn pack_r(op: u8, a: u8, b: u8, c: u8) -> u32 {
    pack(op, a, b, (c as u32 & 31) << 9)
}

/// Encodes an instruction to its 32-bit word.
///
/// # Errors
/// Returns [`EncodeError`] if an immediate or offset does not fit.
pub fn encode(instr: Instr) -> Result<u32, EncodeError> {
    Ok(match instr {
        Instr::Halt => pack(OP_HALT, 0, 0, 0),
        Instr::Syscall => pack(OP_SYSCALL, 0, 0, 0),
        Instr::Alu { op, rd, rs1, rs2 } => pack_r(OP_ALU + op.code(), rd.0, rs1.0, rs2.0),
        Instr::AluImm { op, rd, rs1, imm } => {
            pack(OP_ALUI + op.code(), rd.0, rs1.0, imm14(imm)?)
        }
        Instr::Lui { rd, imm } => {
            if imm >= 1 << 19 {
                return Err(EncodeError::ImmOutOfRange {
                    value: imm as i64,
                    bits: 19,
                });
            }
            pack_j(OP_LUI, rd.0, imm)
        }
        Instr::Mul { op, rd, rs1, rs2 } => pack_r(OP_MUL + op.code(), rd.0, rs1.0, rs2.0),
        Instr::Load {
            width,
            unsigned,
            rd,
            rs1,
            offset,
        } => {
            let op = match (width, unsigned) {
                (MemWidth::Word, _) => OP_LW,
                (MemWidth::Half, false) => OP_LH,
                (MemWidth::Half, true) => OP_LHU,
                (MemWidth::Byte, false) => OP_LB,
                (MemWidth::Byte, true) => OP_LBU,
            };
            pack(op, rd.0, rs1.0, imm14(offset)?)
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let op = match width {
                MemWidth::Word => OP_SW,
                MemWidth::Half => OP_SH,
                MemWidth::Byte => OP_SB,
            };
            pack(op, rs2.0, rs1.0, imm14(offset)?)
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => pack(OP_BRANCH + cond.code(), rs1.0, rs2.0, word_offset14(offset)?),
        Instr::Jal { rd, offset } => pack_j(OP_JAL, rd.0, word_offset19(offset)?),
        Instr::Jalr { rd, rs1, offset } => pack(OP_JALR, rd.0, rs1.0, imm14(offset)?),
        Instr::Fpu { op, fd, fs1, fs2 } => pack_r(OP_FPU + op.code(), fd.0, fs1.0, fs2.0),
        Instr::FpCmp {
            cond,
            rd,
            fs1,
            fs2,
        } => pack_r(OP_FCMP + cond.code(), rd.0, fs1.0, fs2.0),
        Instr::CvtSW { fd, rs1 } => pack(OP_CVTSW, fd.0, rs1.0, 0),
        Instr::CvtWS { rd, fs1 } => pack(OP_CVTWS, rd.0, fs1.0, 0),
        Instr::FpLoad { fd, rs1, offset } => pack(OP_FLW, fd.0, rs1.0, imm14(offset)?),
        Instr::FpStore { fs2, rs1, offset } => pack(OP_FSW, fs2.0, rs1.0, imm14(offset)?),
    })
}

/// Decodes a 32-bit word to an instruction.
///
/// # Errors
/// Returns [`DecodeError::BadOpcode`] for unknown opcodes.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let op = (word >> 24) as u8;
    let a = ((word >> 19) & 31) as u8;
    let b = ((word >> 14) & 31) as u8;
    let c = ((word >> 9) & 31) as u8;
    let i14 = sext14(word);
    let i19 = sext19(word);

    Ok(match op {
        OP_HALT => Instr::Halt,
        OP_SYSCALL => Instr::Syscall,
        _ if (OP_ALU..OP_ALU + 10).contains(&op) => Instr::Alu {
            op: AluOp::ALL[(op - OP_ALU) as usize],
            rd: Reg(a),
            rs1: Reg(b),
            rs2: Reg(c),
        },
        _ if (OP_ALUI..OP_ALUI + 10).contains(&op) => Instr::AluImm {
            op: AluOp::ALL[(op - OP_ALUI) as usize],
            rd: Reg(a),
            rs1: Reg(b),
            imm: i14,
        },
        OP_LUI => Instr::Lui {
            rd: Reg(a),
            imm: word & 0x7FFFF,
        },
        _ if (OP_MUL..OP_MUL + 4).contains(&op) => Instr::Mul {
            op: MulOp::ALL[(op - OP_MUL) as usize],
            rd: Reg(a),
            rs1: Reg(b),
            rs2: Reg(c),
        },
        OP_LW | OP_LH | OP_LHU | OP_LB | OP_LBU => {
            let (width, unsigned) = match op {
                OP_LW => (MemWidth::Word, false),
                OP_LH => (MemWidth::Half, false),
                OP_LHU => (MemWidth::Half, true),
                OP_LB => (MemWidth::Byte, false),
                _ => (MemWidth::Byte, true),
            };
            Instr::Load {
                width,
                unsigned,
                rd: Reg(a),
                rs1: Reg(b),
                offset: i14,
            }
        }
        OP_SW | OP_SH | OP_SB => {
            let width = match op {
                OP_SW => MemWidth::Word,
                OP_SH => MemWidth::Half,
                _ => MemWidth::Byte,
            };
            Instr::Store {
                width,
                rs2: Reg(a),
                rs1: Reg(b),
                offset: i14,
            }
        }
        _ if (OP_BRANCH..OP_BRANCH + 6).contains(&op) => Instr::Branch {
            cond: BranchCond::ALL[(op - OP_BRANCH) as usize],
            rs1: Reg(a),
            rs2: Reg(b),
            offset: i14 * 4,
        },
        OP_JAL => Instr::Jal {
            rd: Reg(a),
            offset: i19 * 4,
        },
        OP_JALR => Instr::Jalr {
            rd: Reg(a),
            rs1: Reg(b),
            offset: i14,
        },
        _ if (OP_FPU..OP_FPU + 4).contains(&op) => Instr::Fpu {
            op: FpuOp::ALL[(op - OP_FPU) as usize],
            fd: FReg(a),
            fs1: FReg(b),
            fs2: FReg(c),
        },
        _ if (OP_FCMP..OP_FCMP + 3).contains(&op) => Instr::FpCmp {
            cond: FpCmpCond::ALL[(op - OP_FCMP) as usize],
            rd: Reg(a),
            fs1: FReg(b),
            fs2: FReg(c),
        },
        OP_CVTSW => Instr::CvtSW {
            fd: FReg(a),
            rs1: Reg(b),
        },
        OP_CVTWS => Instr::CvtWS {
            rd: Reg(a),
            fs1: FReg(b),
        },
        OP_FLW => Instr::FpLoad {
            fd: FReg(a),
            rs1: Reg(b),
            offset: i14,
        },
        OP_FSW => Instr::FpStore {
            fs2: FReg(a),
            rs1: Reg(b),
            offset: i14,
        },
        _ => return Err(DecodeError::BadOpcode { opcode: op, word }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = encode(i).expect("encodable");
        let back = decode(w).expect("decodable");
        assert_eq!(i, back, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_representatives() {
        roundtrip(Instr::Halt);
        roundtrip(Instr::Syscall);
        for op in AluOp::ALL {
            roundtrip(Instr::Alu {
                op,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(31),
            });
            roundtrip(Instr::AluImm {
                op,
                rd: Reg(31),
                rs1: Reg(0),
                imm: -8192,
            });
        }
        for op in MulOp::ALL {
            roundtrip(Instr::Mul {
                op,
                rd: Reg(9),
                rs1: Reg(10),
                rs2: Reg(11),
            });
        }
        for cond in BranchCond::ALL {
            roundtrip(Instr::Branch {
                cond,
                rs1: Reg(1),
                rs2: Reg(2),
                offset: -32768,
            });
        }
        for op in FpuOp::ALL {
            roundtrip(Instr::Fpu {
                op,
                fd: FReg(1),
                fs1: FReg(2),
                fs2: FReg(3),
            });
        }
        for cond in FpCmpCond::ALL {
            roundtrip(Instr::FpCmp {
                cond,
                rd: Reg(4),
                fs1: FReg(5),
                fs2: FReg(6),
            });
        }
        roundtrip(Instr::Lui {
            rd: Reg(7),
            imm: 0x7FFFF,
        });
        roundtrip(Instr::Jal {
            rd: Reg(31),
            offset: 4 * ((1 << 18) - 1),
        });
        roundtrip(Instr::Jalr {
            rd: Reg(1),
            rs1: Reg(2),
            offset: 8191,
        });
        roundtrip(Instr::CvtSW {
            fd: FReg(1),
            rs1: Reg(2),
        });
        roundtrip(Instr::CvtWS {
            rd: Reg(3),
            fs1: FReg(4),
        });
        roundtrip(Instr::FpLoad {
            fd: FReg(1),
            rs1: Reg(2),
            offset: -4,
        });
        roundtrip(Instr::FpStore {
            fs2: FReg(3),
            rs1: Reg(4),
            offset: 4,
        });
        for (w, u) in [
            (MemWidth::Word, false),
            (MemWidth::Half, false),
            (MemWidth::Half, true),
            (MemWidth::Byte, false),
            (MemWidth::Byte, true),
        ] {
            roundtrip(Instr::Load {
                width: w,
                unsigned: u,
                rd: Reg(5),
                rs1: Reg(6),
                offset: 124,
            });
        }
        for w in [MemWidth::Word, MemWidth::Half, MemWidth::Byte] {
            roundtrip(Instr::Store {
                width: w,
                rs2: Reg(5),
                rs1: Reg(6),
                offset: -124,
            });
        }
    }

    #[test]
    fn imm_range_checked() {
        let e = encode(Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 8192,
        });
        assert!(matches!(e, Err(EncodeError::ImmOutOfRange { bits: 14, .. })));
        let e = encode(Instr::Lui {
            rd: Reg(1),
            imm: 1 << 19,
        });
        assert!(matches!(e, Err(EncodeError::ImmOutOfRange { bits: 19, .. })));
    }

    #[test]
    fn misaligned_branch_rejected() {
        let e = encode(Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg(1),
            rs2: Reg(2),
            offset: 6,
        });
        assert!(matches!(e, Err(EncodeError::MisalignedOffset { offset: 6 })));
        let e = encode(Instr::Jal {
            rd: Reg(0),
            offset: 2,
        });
        assert!(matches!(e, Err(EncodeError::MisalignedOffset { .. })));
    }

    #[test]
    fn bad_opcode_decodes_to_error() {
        let e = decode(0xFF00_0000);
        assert!(matches!(e, Err(DecodeError::BadOpcode { opcode: 0xFF, .. })));
        assert!(decode(0xFF00_0000).unwrap_err().to_string().contains("0xff"));
    }

    #[test]
    fn branch_offsets_scale_by_four() {
        let w = encode(Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg(1),
            rs2: Reg(2),
            offset: -4,
        })
        .unwrap();
        // imm field holds -1.
        assert_eq!(w & 0x3FFF, 0x3FFF);
    }
}
