//! The N-way differential oracle.
//!
//! Every generated machine runs across the full equivalence matrix the
//! repository already ships, and the oracle hard-fails on any divergence
//! in digest, cycle count, retirement count, or outcome:
//!
//! 1. **Scheduler modes** — `SchedulerMode::Seed` vs `Fast` (PR 3's
//!    sensitivity fast path must be observationally invisible).
//! 2. **Observability** — event log + metrics + stall attribution on vs
//!    off (observers must not perturb the schedule).
//! 3. **Farm parallelism** — `run_serial` vs `run_parallel` at 1, 2 and 8
//!    workers over the whole batch (work stealing must not change any
//!    job's result, only who runs it).
//! 4. **Checkpoint cuts** — checkpoint at a case-chosen cycle, restore
//!    into a fresh machine, continue: the continuation must replay the
//!    uninterrupted run's trace tail bit-for-bit, agree on the mid-run
//!    [`osm_core::Machine::state_fingerprint`] at the cut, and end in the
//!    identical final state.
//!
//! Legs 1–3 ride the simulation farm (`ModelKind::Adl` jobs), so the
//! fuzzer exercises the same dispatch path production sweeps use; leg 4
//! drives `osm-core` directly through the public probe points added for
//! mid-run cuts.

use crate::gen::FuzzCase;
use osm_core::{
    FaultInjector, InertBehavior, Machine, ManagerId, SchedulerMode, Trace, TraceMode,
};
use simfarm::{run_parallel, run_serial, JobResult, SimJob};

/// One leg's observable result, in comparison form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegResult {
    /// Transition-trace digest.
    pub digest: u64,
    /// Final cycle count.
    pub cycles: u64,
    /// Retired transitions.
    pub retired: u64,
    /// Outcome label (`halted`, `budget-exhausted`, `stalled: …`, ...).
    pub outcome: String,
}

impl LegResult {
    fn of(result: &JobResult) -> LegResult {
        LegResult {
            digest: result.digest,
            cycles: result.cycles,
            retired: result.retired,
            outcome: result.outcome.label(),
        }
    }
}

/// A detected divergence between two legs that must agree. Any divergence
/// is a bug in the model stack (or the oracle), never acceptable noise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The diverging case.
    pub case: String,
    /// The reference leg.
    pub left: String,
    /// The leg that disagreed.
    pub right: String,
    /// What differed, with both values.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} vs {}: {}",
            self.case, self.left, self.right, self.detail
        )
    }
}

/// One case's verdict when every leg agreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseVerdict {
    /// Case label.
    pub name: String,
    /// The agreed digest (reference leg: Fast scheduler, no observability).
    pub digest: u64,
    /// The agreed cycle count.
    pub cycles: u64,
    /// The agreed outcome label.
    pub outcome: String,
    /// The checkpoint cut the restore leg replayed at, or `None` when the
    /// run was too short to cut (zero executed cycles).
    pub cut: Option<u64>,
}

/// The four farm-leg variants of a case, in fixed comparison order.
const VARIANTS: [(&str, SchedulerMode, bool); 4] = [
    ("fast", SchedulerMode::Fast, false),
    ("seed", SchedulerMode::Seed, false),
    ("fast+obs", SchedulerMode::Fast, true),
    ("seed+obs", SchedulerMode::Seed, true),
];

/// Worker counts for the parallel legs.
const WORKERS: [usize; 3] = [1, 2, 8];

/// Builds the farm jobs for one case: every scheduler × observability
/// variant. Stall budgets are disabled — generated machines have no halt
/// concept and may legitimately wedge; the cycle budget bounds every leg.
pub fn case_jobs(case: &FuzzCase) -> Vec<SimJob> {
    VARIANTS
        .iter()
        .map(|(tag, scheduler, observability)| {
            let mut job = SimJob::adl(
                format!("{}/{tag}", case.name),
                case.source.clone(),
                case.osms,
                case.max_cycles,
            );
            job.scheduler = *scheduler;
            job.observability = *observability;
            job.stall_budget = None;
            job.faults = case.faults.clone();
            job
        })
        .collect()
}

/// Runs the full differential matrix over a batch of cases. Returns the
/// per-case verdicts plus every divergence found (empty = all equivalences
/// held). The batch is deterministic: same cases, same verdict list,
/// bit for bit.
pub fn check_cases(cases: &[FuzzCase]) -> (Vec<CaseVerdict>, Vec<Divergence>) {
    let mut divergences = Vec::new();

    // All farm variants of all cases, as one job list — the exact shape a
    // production sweep would run.
    let jobs: Vec<SimJob> = cases.iter().flat_map(case_jobs).collect();
    let serial = run_serial(&jobs);

    // Leg 3: parallel execution must reproduce the serial results
    // element-wise at every worker count.
    for workers in WORKERS {
        let parallel = match run_parallel(&jobs, workers) {
            Ok(results) => results,
            Err(e) => {
                divergences.push(Divergence {
                    case: "<farm>".into(),
                    left: "serial".into(),
                    right: format!("parallel@{workers}"),
                    detail: format!("farm error: {e}"),
                });
                continue;
            }
        };
        for (job, (s, p)) in jobs.iter().zip(serial.iter().zip(&parallel)) {
            if LegResult::of(s) != LegResult::of(p) {
                divergences.push(Divergence {
                    case: job.name.clone(),
                    left: "serial".into(),
                    right: format!("parallel@{workers}"),
                    detail: format!("{:?} vs {:?}", LegResult::of(s), LegResult::of(p)),
                });
            }
        }
    }

    // Legs 1+2: within each case the four variants must agree.
    let mut verdicts = Vec::with_capacity(cases.len());
    for (i, case) in cases.iter().enumerate() {
        let legs = &serial[i * VARIANTS.len()..(i + 1) * VARIANTS.len()];
        let reference = LegResult::of(&legs[0]);
        for (leg, (tag, _, _)) in legs.iter().zip(&VARIANTS).skip(1) {
            let got = LegResult::of(leg);
            if got != reference {
                divergences.push(Divergence {
                    case: case.name.clone(),
                    left: VARIANTS[0].0.into(),
                    right: (*tag).into(),
                    detail: format!("{reference:?} vs {got:?}"),
                });
            }
        }

        // Leg 4: checkpoint → restore at the case's cut.
        let cut = match checkpoint_leg(case, &reference, &mut divergences) {
            Ok(cut) => cut,
            Err(d) => {
                divergences.push(d);
                None
            }
        };

        verdicts.push(CaseVerdict {
            name: case.name.clone(),
            digest: reference.digest,
            cycles: reference.cycles,
            outcome: reference.outcome,
            cut,
        });
    }

    (verdicts, divergences)
}

/// Builds the direct (non-farm) machine for a case: Fast scheduler, fault
/// plan installed on manager 0, no trace yet.
fn build_machine(case: &FuzzCase) -> Machine<()> {
    let synth = osm_adl::load(&case.source).expect("oracle cases carry verified source");
    let mut machine: Machine<()> = Machine::new(());
    synth.install_managers(&mut machine);
    for k in 0..case.osms {
        let (_, spec) = &synth.specs[(k as usize) % synth.specs.len()];
        machine.add_osm(spec, InertBehavior);
    }
    machine.set_scheduler_mode(SchedulerMode::Fast);
    if let Some(plan) = &case.faults {
        if !machine.managers.is_empty() {
            FaultInjector::install(&mut machine.managers, ManagerId(0), plan.clone());
        }
    }
    machine
}

/// Steps `steps` cycles, returning the first model error's rendering.
fn drive(machine: &mut Machine<()>, steps: u64) -> Option<String> {
    for _ in 0..steps {
        if let Err(e) = machine.step() {
            return Some(e.to_string());
        }
    }
    None
}

/// Digest of the events at or after `cut` — what a digest-only trace
/// attached at cycle `cut` would have accumulated.
fn tail_digest(full: &Trace, cut: u64) -> u64 {
    let mut tail = Trace::digest_only();
    for ev in full.events().filter(|ev| ev.cycle >= cut) {
        tail.push(*ev);
    }
    tail.digest()
}

/// The checkpoint/restore equivalence leg. Returns the cut cycle used
/// (`None` when the run executed zero cycles and there was nothing to
/// cut), pushing any divergence found.
fn checkpoint_leg(
    case: &FuzzCase,
    farm_reference: &LegResult,
    divergences: &mut Vec<Divergence>,
) -> Result<Option<u64>, Divergence> {
    let diverge = |right: &str, detail: String| Divergence {
        case: case.name.clone(),
        left: "uninterrupted".into(),
        right: right.into(),
        detail,
    };

    // Reference: uninterrupted, full trace from cycle 0.
    let mut reference = build_machine(case);
    reference.enable_trace_with(Trace::with_mode(TraceMode::Full));
    let ref_err = drive(&mut reference, case.max_cycles);
    let ref_cycles = reference.cycle();
    let ref_fingerprint = reference.state_fingerprint();
    let ref_trace = reference.take_trace().expect("trace enabled");

    // Cross-family check: the farm's `adl` runner and the direct driver
    // must agree on the full-run digest whenever both complete healthily.
    if ref_err.is_none()
        && farm_reference.outcome == "budget-exhausted"
        && farm_reference.digest != ref_trace.digest()
    {
        return Err(diverge(
            "farm/fast",
            format!(
                "farm digest {:016x} != direct digest {:016x}",
                farm_reference.digest,
                ref_trace.digest()
            ),
        ));
    }

    if ref_cycles == 0 {
        return Ok(None);
    }
    // Clamp the requested cut into the cycles that actually executed.
    let cut = 1 + case.cut % ref_cycles;

    // Interrupted: identical machine, checkpointed at the cut, dropped.
    let mut interrupted = build_machine(case);
    if let Some(e) = drive(&mut interrupted, cut) {
        return Err(diverge(
            "interrupted",
            format!("error `{e}` before cut {cut}, which the reference passed"),
        ));
    }
    let cut_fingerprint = interrupted.state_fingerprint();
    let ckpt = match interrupted.checkpoint() {
        Ok(c) => c,
        Err(e) => return Err(diverge("interrupted", format!("checkpoint failed: {e}"))),
    };
    drop(interrupted);

    // Restored: fresh machine, restore, late-attach a digest trace,
    // continue to the same budget.
    let mut restored = build_machine(case);
    if let Err(e) = restored.restore(&ckpt) {
        return Err(diverge("restored", format!("restore failed: {e}")));
    }
    if restored.cycle() != cut {
        return Err(diverge(
            "restored",
            format!("restore rewound to cycle {}, expected {cut}", restored.cycle()),
        ));
    }
    if restored.state_fingerprint() != cut_fingerprint {
        divergences.push(diverge(
            "restored",
            format!(
                "state fingerprint at cut {cut}: {:016x} != {:016x}",
                restored.state_fingerprint(),
                cut_fingerprint
            ),
        ));
    }
    restored.enable_trace_with(Trace::digest_only());
    let rest_err = drive(&mut restored, case.max_cycles - cut);

    if rest_err != ref_err {
        divergences.push(diverge(
            "restored",
            format!("outcome {ref_err:?} vs {rest_err:?} (cut {cut})"),
        ));
    }
    if restored.cycle() != ref_cycles {
        divergences.push(diverge(
            "restored",
            format!("final cycle {} vs {ref_cycles} (cut {cut})", restored.cycle()),
        ));
    }
    let expected_tail = tail_digest(&ref_trace, cut);
    let got_tail = restored.trace_digest().expect("trace attached");
    if got_tail != expected_tail {
        divergences.push(diverge(
            "restored",
            format!("tail digest {got_tail:016x} != {expected_tail:016x} (cut {cut})"),
        ));
    }
    if restored.state_fingerprint() != ref_fingerprint {
        divergences.push(diverge(
            "restored",
            format!(
                "final state fingerprint {:016x} != {:016x} (cut {cut})",
                restored.state_fingerprint(),
                ref_fingerprint
            ),
        ));
    }
    Ok(Some(cut))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_batch, GenConfig};

    #[test]
    fn small_batch_has_zero_divergences() {
        let cases = generate_batch(0x05ED, 8, &GenConfig::default());
        let (verdicts, divergences) = check_cases(&cases);
        assert!(divergences.is_empty(), "{divergences:#?}");
        assert_eq!(verdicts.len(), 8);
        for v in &verdicts {
            assert_eq!(v.outcome, "budget-exhausted", "{}: {}", v.name, v.outcome);
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let cases = generate_batch(0xBEE, 4, &GenConfig::default());
        let (a, _) = check_cases(&cases);
        let (b, _) = check_cases(&cases);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest, y.digest);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.cut, y.cut);
        }
    }
}
