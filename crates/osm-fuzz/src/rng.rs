//! The fuzzer's random source: SplitMix64.
//!
//! The whole fuzzer is **seeded and fully deterministic** — same seed, same
//! machines, same oracle verdicts, byte-identical output. That rules out
//! any ambient entropy (time, thread ids, ASLR'd addresses), so the
//! generator draws everything from this self-contained 64-bit PRNG. The
//! vendored `rand` is a stub; SplitMix64 is tiny, has a full 2^64 period
//! over its Weyl sequence, and is the standard seeder for larger PRNGs —
//! more than enough state space for structural fuzzing.

/// SplitMix64 (Steele, Lea & Flood; public-domain reference constants).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire future is determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Modulo bias is irrelevant at fuzzing's
    /// tiny ranges (`n` ≤ a few hundred against 2^64).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xFEED);
        let mut b = SplitMix64::new(0xFEED);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, from the public SplitMix64
        // reference implementation.
        let mut rng = SplitMix64::new(1_234_567);
        assert_eq!(rng.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn helpers_stay_in_bounds() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(3, 9);
            assert!((3..=9).contains(&v));
        }
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
