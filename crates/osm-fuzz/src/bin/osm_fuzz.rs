//! The fuzzer CLI: sweep a seed range, shrink any divergence, and emit a
//! self-contained regression file.
//!
//! ```text
//! osm_fuzz [--seed HEX] [--count N] [--emit DIR] [--export SEED]
//! ```
//!
//! * `--seed` / `--count` — the deterministic sweep (defaults 0x0SEED/32).
//! * `--emit DIR` — on divergence, shrink the case and write
//!   `DIR/<name>.json` (the corpus format `tests/fuzz_corpus.rs` replays).
//! * `--export SEED` — print the generated corpus JSON for one seed and
//!   exit (handy for committing representative cases).

use osm_fuzz::{check_cases, generate, generate_batch, shrink, to_json_text, GenConfig};
use std::process::ExitCode;

struct Options {
    seed: u64,
    count: usize,
    emit: Option<std::path::PathBuf>,
    export: Option<u64>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 0x05EED,
        count: 32,
        emit: None,
        export: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed");
                opts.seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
                    .expect("--seed must be hex");
            }
            "--count" => opts.count = value("--count").parse().expect("--count must be a number"),
            "--emit" => opts.emit = Some(value("--emit").into()),
            "--export" => {
                let v = value("--export");
                opts.export = Some(
                    u64::from_str_radix(v.trim_start_matches("0x"), 16)
                        .expect("--export must be hex"),
                );
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();

    if let Some(seed) = opts.export {
        let case = generate(seed, &GenConfig::default());
        print!("{}", to_json_text(&case));
        return ExitCode::SUCCESS;
    }

    eprintln!("osm_fuzz: sweep seed={:#x} count={}", opts.seed, opts.count);
    let cases = generate_batch(opts.seed, opts.count, &GenConfig::default());
    let (verdicts, divergences) = check_cases(&cases);
    eprintln!(
        "checked {} machines: {} divergence(s)",
        verdicts.len(),
        divergences.len()
    );
    if divergences.is_empty() {
        return ExitCode::SUCCESS;
    }

    for d in &divergences {
        eprintln!("DIVERGENCE {d}");
    }
    // Shrink each diverging case once (dedup by case name) and emit.
    let mut shrunk = Vec::new();
    for case in &cases {
        if divergences.iter().any(|d| d.case.starts_with(&case.name)) {
            eprintln!("shrinking {} ...", case.name);
            let minimal = shrink(case);
            eprintln!(
                "  minimal: osms={} max_cycles={} faults={} source={} bytes",
                minimal.osms,
                minimal.max_cycles,
                minimal.faults.is_some(),
                minimal.source.len()
            );
            shrunk.push(minimal);
        }
    }
    if let Some(dir) = &opts.emit {
        std::fs::create_dir_all(dir).expect("create --emit dir");
        for case in &shrunk {
            let path = dir.join(format!("{}.json", case.name));
            std::fs::write(&path, to_json_text(case)).expect("write corpus file");
            eprintln!("emitted {}", path.display());
        }
    } else {
        for case in &shrunk {
            print!("{}", to_json_text(case));
        }
    }
    ExitCode::FAILURE
}
