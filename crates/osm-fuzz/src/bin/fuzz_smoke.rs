//! CI gate: a fixed-seed, bounded-budget fuzz sweep.
//!
//! Generates at least 64 verified machines from a pinned seed, runs the
//! full differential matrix (Seed/Fast × serial/parallel@1/2/8 ×
//! checkpoint × observability), and exits non-zero on any divergence.
//! Every line printed to stdout is a pure function of the seed, so CI
//! runs the binary twice and `cmp`s the outputs to pin determinism
//! end to end.
//!
//! Usage: `fuzz_smoke [count] [seed-hex]` (defaults: 64 machines,
//! seed `0xD1FF`).

use osm_fuzz::{check_cases, generate_batch, GenConfig};
use std::process::ExitCode;

const DEFAULT_COUNT: usize = 64;
const DEFAULT_SEED: u64 = 0xD1FF;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let count: usize = args
        .next()
        .map(|a| a.parse().expect("count must be a number"))
        .unwrap_or(DEFAULT_COUNT);
    let seed = args
        .next()
        .map(|a| u64::from_str_radix(a.trim_start_matches("0x"), 16).expect("seed must be hex"))
        .unwrap_or(DEFAULT_SEED);

    println!("fuzz_smoke: seed={seed:#x} machines={count}");
    let cases = generate_batch(seed, count, &GenConfig::default());
    let faulted = cases.iter().filter(|c| c.faults.is_some()).count();
    println!("generated {} verified machines ({faulted} with fault plans)", cases.len());

    let (verdicts, divergences) = check_cases(&cases);
    for v in &verdicts {
        let cut = match v.cut {
            Some(c) => format!("{c}"),
            None => "-".to_owned(),
        };
        println!(
            "{}: digest={:016x} cycles={} outcome={} cut={cut}",
            v.name, v.digest, v.cycles, v.outcome
        );
    }

    if divergences.is_empty() {
        println!(
            "fuzz_smoke OK: {} machines x Seed/Fast x serial/parallel@1/2/8 x checkpoint x observability, zero divergences",
            verdicts.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &divergences {
            eprintln!("DIVERGENCE {d}");
        }
        eprintln!("fuzz_smoke FAILED: {} divergence(s)", divergences.len());
        ExitCode::FAILURE
    }
}
