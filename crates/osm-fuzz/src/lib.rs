//! # osm-fuzz — a seeded model fuzzer with an N-way differential oracle
//!
//! The paper's claim is that the OSM model is formal enough to check
//! mechanically; this crate checks the *implementation* the same way.
//! A deterministic generator produces random well-formed ADL machines
//! (screened through [`osm_core::verify_spec`] so only structurally sound
//! specs run), random workloads and random fault plans; the oracle then
//! executes each machine across every equivalence the repository ships —
//! `Seed` vs `Fast` scheduling, serial vs parallel farms at 1/2/8
//! workers, checkpoint→restore at a random cycle vs uninterrupted,
//! observability on vs off — and hard-fails on any digest, cycle or
//! outcome divergence. A built-in shrinker minimizes failures and the
//! corpus module emits self-contained regression files replayed by
//! `tests/fuzz_corpus.rs`.
//!
//! Everything is seeded: the same seed yields byte-identical machines,
//! verdicts and reports, which is what lets CI compare two consecutive
//! runs bit for bit.
//!
//! ```
//! use osm_fuzz::{check_cases, generate_batch, GenConfig};
//!
//! let cases = generate_batch(0xD1FF, 4, &GenConfig::default());
//! let (verdicts, divergences) = check_cases(&cases);
//! assert!(divergences.is_empty());
//! assert_eq!(verdicts.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use corpus::{from_json_text, to_json_text};
pub use gen::{generate, generate_batch, FuzzCase, GenConfig};
pub use oracle::{case_jobs, check_cases, CaseVerdict, Divergence, LegResult};
pub use rng::SplitMix64;
pub use shrink::shrink;
