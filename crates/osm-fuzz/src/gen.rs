//! Random well-formed ADL machine generation.
//!
//! The generator builds a [`MachineDecl`] by construction-biased sampling:
//! each OSM class is a ring of states (so every state can reach and return
//! to the initial state), primitives are threaded along the ring with a
//! held-manager ledger (allocate only what is not held, release everything
//! before closing the ring), and extra edges come in two verifier-safe
//! shapes — a same-destination alternative with the same token effects and
//! a bail-out edge to the initial state that releases the ledger. That
//! keeps the acceptance rate high, but soundness never rests on it:
//! every candidate is synthesized and then screened through
//! [`osm_core::verify_spec`], and anything with issues is resampled. Only
//! structurally sound specs reach the differential oracle.

use crate::rng::SplitMix64;
use osm_adl::{
    export, synthesize, AdlIdent, AdlPrimitive, EdgeDecl, MachineDecl, ManagerDecl, ManagerKind,
    OsmDecl,
};
use osm_core::{verify_spec, FaultKind, FaultPlan, FaultRule};

/// One generated fuzz case: a verified machine plus the workload knobs the
/// differential oracle sweeps. `source` is the canonical `osm_adl::export`
/// text — self-contained, so a case replays without the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Case label (`fuzz-<seed hex>`).
    pub name: String,
    /// The generator seed that produced it.
    pub seed: u64,
    /// Canonical ADL source of the verified machine.
    pub source: String,
    /// OSM instances to spawn (round-robin over classes).
    pub osms: u32,
    /// Cycle budget for every leg.
    pub max_cycles: u64,
    /// Requested checkpoint cut (the oracle clamps it into the run).
    pub cut: u64,
    /// Optional deterministic fault plan, installed on manager 0.
    pub faults: Option<FaultPlan>,
}

/// Generation bounds. The defaults keep cases small enough that the full
/// differential matrix over dozens of machines runs in CI seconds.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Managers per machine, inclusive range.
    pub managers: (u64, u64),
    /// OSM classes per machine.
    pub classes: (u64, u64),
    /// States per class.
    pub states: (u64, u64),
    /// OSM instances per case.
    pub osms: (u64, u64),
    /// Cycle budget per case.
    pub max_cycles: (u64, u64),
    /// Probability (num/den) that a case carries a fault plan.
    pub fault_chance: (u64, u64),
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            managers: (1, 3),
            classes: (1, 2),
            states: (2, 5),
            osms: (1, 5),
            max_cycles: (40, 240),
            fault_chance: (1, 2),
        }
    }
}

/// How many resamples [`generate`] tolerates before giving up. The
/// construction bias keeps real rejection rates far below this; hitting
/// the limit means the generator itself regressed.
const MAX_ATTEMPTS: u32 = 64;

/// Generates the fully verified case for `seed`. Deterministic: the same
/// seed and config always return the identical case.
///
/// # Panics
/// If `MAX_ATTEMPTS` candidates in a row fail synthesis or verification —
/// a generator bug, not an input condition.
pub fn generate(seed: u64, config: &GenConfig) -> FuzzCase {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..MAX_ATTEMPTS {
        let decl = gen_decl(&mut rng, config, seed);
        let Ok(synth) = synthesize(&decl) else {
            continue;
        };
        if synth
            .specs
            .iter()
            .any(|(_, spec)| !verify_spec(spec).is_empty())
        {
            continue;
        }
        let source = export(&synth);
        let osms = rng.range(config.osms.0, config.osms.1) as u32;
        let max_cycles = rng.range(config.max_cycles.0, config.max_cycles.1);
        let cut = rng.range(1, max_cycles.saturating_sub(1).max(1));
        let faults = rng
            .chance(config.fault_chance.0, config.fault_chance.1)
            .then(|| gen_faults(&mut rng, max_cycles));
        return FuzzCase {
            name: format!("fuzz-{seed:08x}"),
            seed,
            source,
            osms,
            max_cycles,
            cut,
            faults,
        };
    }
    panic!("generator failed to produce a verifiable machine for seed {seed:#x} in {MAX_ATTEMPTS} attempts");
}

/// Generates `count` cases from consecutive derived seeds.
pub fn generate_batch(seed: u64, count: usize, config: &GenConfig) -> Vec<FuzzCase> {
    let mut seeder = SplitMix64::new(seed);
    (0..count)
        .map(|_| generate(seeder.next_u64(), config))
        .collect()
}

fn gen_decl(rng: &mut SplitMix64, config: &GenConfig, seed: u64) -> MachineDecl {
    let n_managers = rng.range(config.managers.0, config.managers.1) as usize;
    let managers: Vec<ManagerDecl> = (0..n_managers)
        .map(|i| ManagerDecl {
            name: format!("m{i}"),
            kind: gen_manager_kind(rng),
        })
        .collect();
    let n_classes = rng.range(config.classes.0, config.classes.1) as usize;
    let osms = (0..n_classes)
        .map(|c| gen_class(rng, config, &managers, c))
        .collect();
    MachineDecl {
        name: format!("fuzz_{seed:08x}"),
        managers,
        osms,
    }
}

fn gen_manager_kind(rng: &mut SplitMix64) -> ManagerKind {
    // `reset` is excluded: its broadcast semantics are a hardware-layer
    // concern the inert behavior never exercises.
    match rng.below(4) {
        0 => ManagerKind::Exclusive(rng.range(1, 3) as usize),
        1 => ManagerKind::Counting(rng.range(1, 3)),
        2 => ManagerKind::PerCycle(rng.range(1, 3)),
        _ => ManagerKind::Scoreboard(rng.range(2, 4) as usize),
    }
}

/// An identifier expression for allocating/inquiring on `kind`.
fn gen_ident(rng: &mut SplitMix64, kind: ManagerKind) -> AdlIdent {
    match kind {
        ManagerKind::Exclusive(n) => {
            if rng.chance(1, 2) {
                AdlIdent::Any
            } else {
                AdlIdent::Const(rng.below(n as u64))
            }
        }
        ManagerKind::Scoreboard(n) => {
            if rng.chance(1, 2) {
                AdlIdent::Any
            } else {
                AdlIdent::Const(rng.below(n as u64))
            }
        }
        // Counting pools hand out anonymous units.
        ManagerKind::Counting(_) | ManagerKind::PerCycle(_) | ManagerKind::Reset => AdlIdent::Any,
    }
}

/// One OSM class: a state ring with ledger-balanced token primitives.
fn gen_class(
    rng: &mut SplitMix64,
    config: &GenConfig,
    managers: &[ManagerDecl],
    class: usize,
) -> OsmDecl {
    let n_states = rng.range(config.states.0, config.states.1) as usize;
    let states: Vec<String> = (0..n_states).map(|i| format!("S{i}")).collect();
    let mut edges = Vec::new();
    // Managers currently held while walking the ring (indices into
    // `managers`, no duplicates — one live token per manager per OSM keeps
    // `release m[held]` unambiguous).
    let mut held: Vec<usize> = Vec::new();

    for i in 0..n_states {
        let src = states[i].clone();
        let dst = states[(i + 1) % n_states].clone();
        let closing = i == n_states - 1;
        let mut condition = Vec::new();
        if closing {
            // Close the ring balanced: release the entire ledger so every
            // I→I path returns what it took (the verifier's TokenLeak and
            // AllocateIntoInitial checks).
            for &m in held.iter().rev() {
                condition.push(release_prim(rng, &managers[m]));
            }
            held.clear();
        } else {
            for _ in 0..rng.below(3) {
                match rng.below(4) {
                    0 => {
                        // Allocate a manager not currently held.
                        let free: Vec<usize> = (0..managers.len())
                            .filter(|m| !held.contains(m))
                            .collect();
                        if let Some(&m) = free.get(rng.below(free.len().max(1) as u64) as usize) {
                            let ident = gen_ident(rng, managers[m].kind);
                            condition
                                .push(AdlPrimitive::Allocate(managers[m].name.clone(), ident));
                            held.push(m);
                        }
                    }
                    1 => {
                        // Release something held.
                        if !held.is_empty() {
                            let slot = rng.below(held.len() as u64) as usize;
                            let m = held.remove(slot);
                            condition.push(release_prim(rng, &managers[m]));
                        }
                    }
                    _ => {
                        // Inquire is stateless: any manager, any ident
                        // (including an occasional unset slot, which reads
                        // as the vacuous NONE identifier).
                        let m = rng.below(managers.len() as u64) as usize;
                        let ident = if rng.chance(1, 8) {
                            AdlIdent::Slot(rng.below(2) as u32)
                        } else {
                            gen_ident(rng, managers[m].kind)
                        };
                        condition.push(AdlPrimitive::Inquire(managers[m].name.clone(), ident));
                    }
                }
            }
        }
        edges.push(EdgeDecl {
            name: format!("e{i}"),
            src: src.clone(),
            dst: dst.clone(),
            priority: 0,
            condition,
        });

        // A same-destination alternative: identical token effects (the
        // verifier analyses paths, so a primitive-free twin of an
        // allocating edge would read as an unbalanced path), plus an extra
        // inquire, at a different priority.
        if !closing && rng.chance(1, 4) {
            let base = edges.last().expect("just pushed").clone();
            let mut condition = base.condition;
            let m = rng.below(managers.len() as u64) as usize;
            condition.push(AdlPrimitive::Inquire(
                managers[m].name.clone(),
                gen_ident(rng, managers[m].kind),
            ));
            edges.push(EdgeDecl {
                name: format!("e{i}alt"),
                src,
                dst,
                priority: 1 + rng.below(3) as i32,
                condition,
            });
        }
    }

    // Bail-out edges: from a mid-ring state straight back to S0, releasing
    // exactly what the ring walk holds at that point. Re-simulate the
    // ledger to know it.
    let mut ledger: Vec<Vec<usize>> = Vec::with_capacity(n_states);
    let mut walk: Vec<usize> = Vec::new();
    for i in 0..n_states {
        ledger.push(walk.clone());
        let ring_edge = edges
            .iter()
            .find(|e| e.name == format!("e{i}"))
            .expect("ring edge");
        for prim in &ring_edge.condition {
            match prim {
                AdlPrimitive::Allocate(name, _) => {
                    if let Some(m) = managers.iter().position(|d| &d.name == name) {
                        walk.push(m);
                    }
                }
                AdlPrimitive::Release(name, _) | AdlPrimitive::Discard(name, _) => {
                    if let Some(m) = managers.iter().position(|d| &d.name == name) {
                        walk.retain(|&h| h != m);
                    }
                }
                _ => {}
            }
        }
    }
    for i in 1..n_states {
        if rng.chance(1, 5) {
            let condition = ledger[i]
                .iter()
                .rev()
                .map(|&m| release_prim(rng, &managers[m]))
                .collect();
            edges.push(EdgeDecl {
                name: format!("b{i}"),
                src: states[i].clone(),
                dst: states[0].clone(),
                priority: -(1 + rng.below(2) as i32),
                condition,
            });
        }
    }

    OsmDecl {
        name: format!("op{class}"),
        states,
        initial: "S0".to_owned(),
        edges,
    }
}

/// Returning a token: mostly `release m[held]`, occasionally a discard
/// (both count as giving the token back for path balance).
fn release_prim(rng: &mut SplitMix64, manager: &ManagerDecl) -> AdlPrimitive {
    if rng.chance(1, 6) {
        AdlPrimitive::Discard(manager.name.clone(), AdlIdent::Held)
    } else {
        AdlPrimitive::Release(manager.name.clone(), AdlIdent::Held)
    }
}

/// A deterministic fault plan. Probabilities are multiples of 1/16 so the
/// decimal JSON spelling in the corpus round-trips `f64`-exactly.
fn gen_faults(rng: &mut SplitMix64, max_cycles: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    let kinds = [
        FaultKind::DenyAllocate,
        FaultKind::DenyInquire,
        FaultKind::DeferRelease,
        FaultKind::DropToken,
        FaultKind::CorruptToken,
    ];
    for _ in 0..rng.range(1, 2) {
        let kind = *rng.pick(&kinds);
        let probability = rng.range(1, 4) as f64 / 16.0;
        let rule = if rng.chance(1, 3) {
            let start = rng.below(max_cycles / 2 + 1);
            let end = start + rng.range(1, max_cycles / 2 + 1);
            FaultRule::new(kind, probability).between(start, end)
        } else {
            FaultRule::new(kind, probability)
        };
        plan = plan.rule(rule);
    }
    if rng.chance(1, 8) {
        let start = rng.below(max_cycles / 2 + 1);
        plan = plan.blackhole(start, start + rng.range(2, 10));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0xABCD, &GenConfig::default());
        let b = generate(0xABCD, &GenConfig::default());
        assert_eq!(a, b);
        assert!(a.source.starts_with("machine fuzz_"), "{}", a.source);
        assert!(a.cut < a.max_cycles);
        assert!(a.osms >= 1);
    }

    #[test]
    fn every_generated_machine_is_verifier_clean_and_loads() {
        for case in generate_batch(7, 40, &GenConfig::default()) {
            let synth = osm_adl::load(&case.source)
                .unwrap_or_else(|e| panic!("{}: exported source must load: {e}", case.name));
            assert!(!synth.specs.is_empty());
            for (name, spec) in &synth.specs {
                let issues = verify_spec(spec);
                assert!(
                    issues.is_empty(),
                    "{}/{name}: verifier issues {issues:?}\n{}",
                    case.name,
                    case.source
                );
            }
        }
    }

    #[test]
    fn batch_seeds_differ() {
        let batch = generate_batch(1, 10, &GenConfig::default());
        let mut seeds: Vec<u64> = batch.iter().map(|c| c.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 10, "derived seeds must not repeat");
        assert!(batch.iter().any(|c| c.faults.is_some()));
        assert!(batch.iter().any(|c| c.faults.is_none()));
    }
}
