//! Greedy divergence minimization.
//!
//! Given a case the oracle rejects, the shrinker repeatedly tries
//! simplifying transformations — drop the fault plan, cut the instance
//! count, halve the budget, drop an OSM class, drop an edge, drop a
//! primitive — keeping a candidate only when it still synthesizes, still
//! passes [`osm_core::verify_spec`] (the oracle's precondition), and
//! still diverges. The loop runs to a fixpoint, so the emitted case is
//! locally minimal: removing any single remaining element makes the bug
//! disappear. Shrinking is deterministic — transformations are tried in a
//! fixed order and the first improvement is taken.

use crate::gen::FuzzCase;
use crate::oracle::check_cases;
use osm_adl::{export, parse, synthesize, MachineDecl};
use osm_core::verify_spec;

/// Does the case still fail the oracle? (Any divergence counts — shrinking
/// may walk from one manifestation of the bug to a simpler one.)
fn still_diverges(case: &FuzzCase) -> bool {
    !check_cases(std::slice::from_ref(case)).1.is_empty()
}

/// Re-synthesizes a mutated declaration into a runnable case, enforcing
/// the oracle's verified-spec precondition. `None` when the mutation broke
/// well-formedness — the shrinker just skips such candidates.
fn rebuild(case: &FuzzCase, decl: &MachineDecl) -> Option<FuzzCase> {
    let synth = synthesize(decl).ok()?;
    if synth.specs.is_empty()
        || synth
            .specs
            .iter()
            .any(|(_, spec)| !verify_spec(spec).is_empty())
    {
        return None;
    }
    Some(FuzzCase {
        source: export(&synth),
        ..case.clone()
    })
}

/// Structural mutation candidates for one declaration, simplest first.
fn structural_candidates(decl: &MachineDecl) -> Vec<MachineDecl> {
    let mut out = Vec::new();
    // Drop a whole OSM class.
    if decl.osms.len() > 1 {
        for i in 0..decl.osms.len() {
            let mut d = decl.clone();
            d.osms.remove(i);
            out.push(d);
        }
    }
    // Drop a single edge.
    for (c, class) in decl.osms.iter().enumerate() {
        if class.edges.len() > 1 {
            for e in 0..class.edges.len() {
                let mut d = decl.clone();
                d.osms[c].edges.remove(e);
                out.push(d);
            }
        }
    }
    // Drop a single primitive from an edge condition.
    for (c, class) in decl.osms.iter().enumerate() {
        for (e, edge) in class.edges.iter().enumerate() {
            for p in 0..edge.condition.len() {
                let mut d = decl.clone();
                d.osms[c].edges[e].condition.remove(p);
                out.push(d);
            }
        }
    }
    // Drop an unreferenced manager.
    for m in 0..decl.managers.len() {
        let name = &decl.managers[m].name;
        let referenced = decl.osms.iter().any(|class| {
            class.edges.iter().any(|edge| {
                edge.condition.iter().any(|prim| {
                    use osm_adl::AdlPrimitive::*;
                    match prim {
                        Allocate(n, _) | Inquire(n, _) | Release(n, _) | Discard(n, _) => n == name,
                        DiscardAll => false,
                    }
                })
            })
        });
        if !referenced && decl.managers.len() > 1 {
            let mut d = decl.clone();
            d.managers.remove(m);
            out.push(d);
        }
    }
    out
}

/// Shrinks a divergent case to a locally minimal one. Returns the input
/// unchanged if it does not actually diverge.
pub fn shrink(case: &FuzzCase) -> FuzzCase {
    if !still_diverges(case) {
        return case.clone();
    }
    let mut best = case.clone();
    loop {
        let mut improved = false;

        // Scalar simplifications, cheapest first.
        let mut scalars: Vec<FuzzCase> = Vec::new();
        if best.faults.is_some() {
            scalars.push(FuzzCase {
                faults: None,
                ..best.clone()
            });
        }
        if best.osms > 1 {
            scalars.push(FuzzCase {
                osms: 1,
                ..best.clone()
            });
            scalars.push(FuzzCase {
                osms: best.osms / 2,
                ..best.clone()
            });
        }
        if best.max_cycles > 2 {
            scalars.push(FuzzCase {
                max_cycles: best.max_cycles / 2,
                cut: (best.cut / 2).max(1),
                ..best.clone()
            });
        }
        if best.cut > 1 {
            scalars.push(FuzzCase {
                cut: best.cut / 2,
                ..best.clone()
            });
        }
        for candidate in scalars {
            if still_diverges(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Structural simplifications on the parsed declaration.
        let Ok(decl) = parse(&best.source) else {
            break;
        };
        for mutated in structural_candidates(&decl) {
            let Some(candidate) = rebuild(&best, &mutated) else {
                continue;
            };
            if still_diverges(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn non_divergent_case_is_returned_unchanged() {
        let case = generate(0x5117, &GenConfig::default());
        assert_eq!(shrink(&case), case);
    }

    #[test]
    fn structural_candidates_cover_classes_edges_and_primitives() {
        let case = generate(0xCAFE, &GenConfig::default());
        let decl = parse(&case.source).unwrap();
        let candidates = structural_candidates(&decl);
        let edges: usize = decl.osms.iter().map(|c| c.edges.len()).sum();
        let prims: usize = decl
            .osms
            .iter()
            .flat_map(|c| &c.edges)
            .map(|e| e.condition.len())
            .sum();
        // Every primitive and (when droppable) every edge yields a
        // candidate; classes only when there are several.
        assert!(candidates.len() >= prims, "{} < {prims}", candidates.len());
        if decl.osms.len() > 1 {
            assert!(candidates.len() >= decl.osms.len() + edges + prims);
        }
        // And each candidate either rebuilds or is skipped — no panics.
        for mutated in candidates {
            let _ = rebuild(&case, &mutated);
        }
    }
}
