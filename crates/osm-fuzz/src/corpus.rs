//! Self-contained regression files for shrunken cases.
//!
//! A corpus file is one JSON object carrying everything needed to replay a
//! case without the generator: the canonical ADL source, the workload
//! knobs, and the exact fault plan. `tests/fuzz_corpus.rs` replays every
//! file under `tests/fuzz_corpus/` through the full differential matrix,
//! so a shrunken divergence committed here stays fixed forever.
//!
//! Encoding choices serve determinism: object keys are sorted (the bench
//! JSON printer normalizes them), 64-bit values use the lossless
//! integer-or-hex spelling, and fault probabilities are generated as
//! multiples of 1/16 so their decimal spelling round-trips `f64`-exactly.

use crate::gen::FuzzCase;
use bench::json::{parse, Json};
use osm_core::{FaultKind, FaultPlan, FaultRule};
use std::collections::BTreeMap;

fn kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::DenyAllocate => "deny-allocate",
        FaultKind::DenyInquire => "deny-inquire",
        FaultKind::DeferRelease => "defer-release",
        FaultKind::DropToken => "drop-token",
        FaultKind::CorruptToken => "corrupt-token",
        FaultKind::Blackhole => "blackhole",
    }
}

fn kind_parse(s: &str) -> Result<FaultKind, String> {
    Ok(match s {
        "deny-allocate" => FaultKind::DenyAllocate,
        "deny-inquire" => FaultKind::DenyInquire,
        "defer-release" => FaultKind::DeferRelease,
        "drop-token" => FaultKind::DropToken,
        "corrupt-token" => FaultKind::CorruptToken,
        "blackhole" => FaultKind::Blackhole,
        other => return Err(format!("unknown fault kind `{other}`")),
    })
}

fn faults_to_json(plan: &FaultPlan) -> Json {
    let rules = plan
        .rules()
        .iter()
        .map(|rule| {
            let mut obj = BTreeMap::new();
            obj.insert("kind".into(), Json::Str(kind_name(rule.kind).into()));
            obj.insert("probability".into(), Json::Num(rule.probability));
            obj.insert(
                "window".into(),
                match rule.window {
                    Some((start, end)) => Json::Arr(vec![
                        Json::lossless_u64(start),
                        Json::lossless_u64(end),
                    ]),
                    None => Json::Null,
                },
            );
            Json::Obj(obj)
        })
        .collect();
    let mut obj = BTreeMap::new();
    obj.insert("seed".into(), Json::lossless_u64(plan.seed()));
    obj.insert("rules".into(), Json::Arr(rules));
    Json::Obj(obj)
}

fn faults_from_json(j: &Json) -> Result<FaultPlan, String> {
    let seed = j
        .get("seed")
        .and_then(Json::lossless_as_u64)
        .ok_or("fault plan missing `seed`")?;
    let mut plan = FaultPlan::new(seed);
    let rules = j
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("fault plan missing `rules`")?;
    for rule in rules {
        let kind = kind_parse(
            rule.get("kind")
                .and_then(Json::as_str)
                .ok_or("rule missing `kind`")?,
        )?;
        let probability = rule
            .get("probability")
            .and_then(Json::as_num)
            .ok_or("rule missing `probability`")?;
        let mut built = FaultRule::new(kind, probability);
        match rule.get("window") {
            None | Some(Json::Null) => {}
            Some(Json::Arr(bounds)) if bounds.len() == 2 => {
                let start = bounds[0].lossless_as_u64().ok_or("bad window start")?;
                let end = bounds[1].lossless_as_u64().ok_or("bad window end")?;
                built = built.between(start, end);
            }
            Some(other) => return Err(format!("bad `window`: {other}")),
        }
        plan = plan.rule(built);
    }
    Ok(plan)
}

/// Serializes a case to its corpus JSON text (newline-terminated).
pub fn to_json_text(case: &FuzzCase) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("name".into(), Json::Str(case.name.clone()));
    obj.insert("seed".into(), Json::lossless_u64(case.seed));
    obj.insert("source".into(), Json::Str(case.source.clone()));
    obj.insert("osms".into(), Json::Num(f64::from(case.osms)));
    obj.insert("max_cycles".into(), Json::lossless_u64(case.max_cycles));
    obj.insert("cut".into(), Json::lossless_u64(case.cut));
    obj.insert(
        "faults".into(),
        match &case.faults {
            Some(plan) => faults_to_json(plan),
            None => Json::Null,
        },
    );
    format!("{}\n", Json::Obj(obj))
}

/// Parses a corpus JSON text back into a replayable case.
///
/// # Errors
/// A description of the first missing or malformed field.
pub fn from_json_text(text: &str) -> Result<FuzzCase, String> {
    let j = parse(text).map_err(|e| e.to_string())?;
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing `name`")?
        .to_owned();
    let seed = j
        .get("seed")
        .and_then(Json::lossless_as_u64)
        .ok_or("missing `seed`")?;
    let source = j
        .get("source")
        .and_then(Json::as_str)
        .ok_or("missing `source`")?
        .to_owned();
    let osms = u32::try_from(
        j.get("osms")
            .and_then(Json::lossless_as_u64)
            .ok_or("missing `osms`")?,
    )
    .map_err(|_| "`osms` exceeds u32".to_owned())?;
    let max_cycles = j
        .get("max_cycles")
        .and_then(Json::lossless_as_u64)
        .ok_or("missing `max_cycles`")?;
    let cut = j
        .get("cut")
        .and_then(Json::lossless_as_u64)
        .ok_or("missing `cut`")?;
    let faults = match j.get("faults") {
        None | Some(Json::Null) => None,
        Some(f) => Some(faults_from_json(f)?),
    };
    // The replay contract: the embedded source must load and verify, the
    // same precondition the oracle demands of generated cases.
    let synth = osm_adl::load(&source).map_err(|e| format!("corpus source: {e}"))?;
    for (class, spec) in &synth.specs {
        let issues = osm_core::verify_spec(spec);
        if !issues.is_empty() {
            return Err(format!("corpus source `{class}` fails verification: {issues:?}"));
        }
    }
    Ok(FuzzCase {
        name,
        seed,
        source,
        osms,
        max_cycles,
        cut,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_batch, GenConfig};

    #[test]
    fn cases_round_trip_exactly() {
        for case in generate_batch(0xC0C0, 12, &GenConfig::default()) {
            let text = to_json_text(&case);
            let back = from_json_text(&text).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert_eq!(back, case, "round-trip mismatch for {}", case.name);
            // And the serialization itself is stable.
            assert_eq!(to_json_text(&back), text);
        }
    }

    #[test]
    fn malformed_corpus_is_rejected_with_context() {
        assert!(from_json_text("not json").is_err());
        assert!(from_json_text("{}").unwrap_err().contains("name"));
        let bad_source = r#"{"name":"x","seed":1,"source":"machine oops {","osms":1,"max_cycles":10,"cut":1,"faults":null}"#;
        assert!(from_json_text(bad_source).unwrap_err().contains("corpus source"));
    }
}
