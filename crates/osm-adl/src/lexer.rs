//! Tokenizer for the OSM architecture description language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Unsigned integer literal.
    Number(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `-` (negative edge priorities)
    Minus,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Number(n) => write!(f, "`{n}`"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Semi => write!(f, "`;`"),
            Token::Colon => write!(f, "`:`"),
            Token::Comma => write!(f, "`,`"),
            Token::Arrow => write!(f, "`->`"),
            Token::Minus => write!(f, "`-`"),
        }
    }
}

/// A token plus its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// The offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: unexpected character `{}`", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes ADL source (`//` and `#` comments run to end of line).
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let mut chars = line.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            match c {
                '#' => break,
                '/' if line[i..].starts_with("//") => break,
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == '_' {
                            end = j + c2.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Spanned {
                        token: Token::Ident(line[start..end].to_owned()),
                        line: line_no,
                    });
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() {
                            end = j + 1;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = &line[start..end];
                    let value = if let Some(hex) = text.strip_prefix("0x") {
                        u64::from_str_radix(hex, 16)
                    } else {
                        text.parse()
                    }
                    .map_err(|_| LexError {
                        line: line_no,
                        ch: c,
                    })?;
                    out.push(Spanned {
                        token: Token::Number(value),
                        line: line_no,
                    });
                }
                '-' => {
                    chars.next();
                    if chars.peek().map(|&(_, c2)| c2) == Some('>') {
                        chars.next();
                        out.push(Spanned {
                            token: Token::Arrow,
                            line: line_no,
                        });
                    } else {
                        out.push(Spanned {
                            token: Token::Minus,
                            line: line_no,
                        });
                    }
                }
                '{' | '}' | '[' | ']' | '(' | ')' | ';' | ':' | ',' => {
                    chars.next();
                    let token = match c {
                        '{' => Token::LBrace,
                        '}' => Token::RBrace,
                        '[' => Token::LBracket,
                        ']' => Token::RBracket,
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        ';' => Token::Semi,
                        ':' => Token::Colon,
                        _ => Token::Comma,
                    };
                    out.push(Spanned {
                        token,
                        line: line_no,
                    });
                }
                other => {
                    return Err(LexError {
                        line: line_no,
                        ch: other,
                    })
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_basic_syntax() {
        assert_eq!(
            toks("edge e1: I -> F { allocate m[0]; }"),
            vec![
                Token::Ident("edge".into()),
                Token::Ident("e1".into()),
                Token::Colon,
                Token::Ident("I".into()),
                Token::Arrow,
                Token::Ident("F".into()),
                Token::LBrace,
                Token::Ident("allocate".into()),
                Token::Ident("m".into()),
                Token::LBracket,
                Token::Number(0),
                Token::RBracket,
                Token::Semi,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn comments_and_hex() {
        assert_eq!(
            toks("x 0x1F // trailing\n# whole line\ny"),
            vec![
                Token::Ident("x".into()),
                Token::Number(0x1F),
                Token::Ident("y".into()),
            ]
        );
    }

    #[test]
    fn lines_tracked() {
        let spanned = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn bad_char_reported() {
        let e = lex("a @ b").unwrap_err();
        assert_eq!(e.ch, '@');
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains('@'));
    }

    #[test]
    fn lone_dash_lexes_as_minus() {
        let tokens = lex("a - b").unwrap();
        assert_eq!(tokens[1].token, Token::Minus);
    }
}
