//! Synthesis: turning a parsed ADL description into executable `osm-core`
//! structures — the "retargetable simulator generation" the paper proposes
//! as the next step (§7). The declarative part of a processor model (state
//! machines, conditions, managers) is generated; only instruction semantics
//! (behaviors) remain hand-written, matching the paper's observation that
//! ~60% of a model's source is synthesizable.

use crate::ast::{AdlIdent, AdlPrimitive, MachineDecl, ManagerKind};
use osm_core::{
    CountingPool, ExclusivePool, IdentExpr, Machine, ManagerId, Primitive, RegScoreboard,
    ResetManager, SlotId, SpecBuilder, StateMachineSpec,
};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors detected during semantic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// An edge references a manager that was not declared.
    UnknownManager {
        /// OSM class name.
        osm: String,
        /// Edge name.
        edge: String,
        /// The missing manager.
        manager: String,
    },
    /// An edge or `initial` references an undeclared state.
    UnknownState {
        /// OSM class name.
        osm: String,
        /// The missing state.
        state: String,
    },
    /// Two managers share a name.
    DuplicateManager {
        /// The duplicated name.
        name: String,
    },
    /// One `states` list names the same state twice. `osm-core`'s
    /// `SpecBuilder` would silently deduplicate; in the declarative source
    /// a repeated name is always a typo, so it is rejected here.
    DuplicateState {
        /// OSM class name.
        osm: String,
        /// The duplicated state.
        state: String,
    },
    /// The spec failed to build (propagated from `osm-core`).
    Spec(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnknownManager { osm, edge, manager } => {
                write!(f, "osm `{osm}` edge `{edge}` uses undeclared manager `{manager}`")
            }
            SynthError::UnknownState { osm, state } => {
                write!(f, "osm `{osm}` references undeclared state `{state}`")
            }
            SynthError::DuplicateManager { name } => {
                write!(f, "manager `{name}` declared twice")
            }
            SynthError::DuplicateState { osm, state } => {
                write!(f, "osm `{osm}` declares state `{state}` twice")
            }
            SynthError::Spec(msg) => write!(f, "spec error: {msg}"),
        }
    }
}

impl Error for SynthError {}

/// A machine synthesized from an ADL description.
#[derive(Debug)]
pub struct SynthesizedMachine {
    /// Machine name.
    pub name: String,
    /// Manager declarations in id order (index = [`ManagerId`] value).
    pub managers: Vec<(String, ManagerKind)>,
    /// One validated spec per `osm` class.
    pub specs: Vec<(String, Arc<StateMachineSpec>)>,
}

impl SynthesizedMachine {
    /// Looks up a synthesized spec by class name.
    pub fn spec(&self, name: &str) -> Option<&Arc<StateMachineSpec>> {
        self.specs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// The [`ManagerId`] a manager name was assigned.
    pub fn manager_id(&self, name: &str) -> Option<ManagerId> {
        self.managers
            .iter()
            .position(|(n, _)| n == name)
            .map(ManagerId::from)
    }

    /// Instantiates every declared manager into `machine`, in id order, and
    /// returns the name → id map.
    ///
    /// # Panics
    /// Panics if `machine` already has managers (the declaration order
    /// fixes the ids the specs were built against).
    pub fn install_managers<S: 'static>(
        &self,
        machine: &mut Machine<S>,
    ) -> BTreeMap<String, ManagerId> {
        assert!(
            machine.managers.is_empty(),
            "ADL manager ids assume an empty manager table"
        );
        let mut map = BTreeMap::new();
        for (name, kind) in &self.managers {
            let id = match *kind {
                ManagerKind::Exclusive(n) => {
                    machine.add_manager(ExclusivePool::new(name.clone(), n))
                }
                ManagerKind::Counting(n) => {
                    machine.add_manager(CountingPool::new(name.clone(), n))
                }
                ManagerKind::PerCycle(n) => {
                    machine.add_manager(CountingPool::per_cycle(name.clone(), n))
                }
                ManagerKind::Scoreboard(n) => {
                    machine.add_manager(RegScoreboard::new(name.clone(), n))
                }
                ManagerKind::Reset => machine.add_manager(ResetManager::new(name.clone())),
            };
            map.insert(name.clone(), id);
        }
        map
    }
}

fn ident_expr(ident: AdlIdent) -> IdentExpr {
    match ident {
        AdlIdent::Const(v) => IdentExpr::Const(v),
        AdlIdent::Any => IdentExpr::ANY,
        AdlIdent::Held => IdentExpr::AnyHeld,
        AdlIdent::Slot(s) => IdentExpr::Slot(SlotId(s)),
    }
}

/// Synthesizes a parsed machine description.
///
/// # Errors
/// Returns [`SynthError`] on semantic problems (unknown managers/states,
/// duplicate names, invalid specs).
pub fn synthesize(decl: &MachineDecl) -> Result<SynthesizedMachine, SynthError> {
    // Manager table (declaration order = ids).
    let mut seen = BTreeMap::new();
    for (k, m) in decl.managers.iter().enumerate() {
        if seen.insert(m.name.clone(), k).is_some() {
            return Err(SynthError::DuplicateManager {
                name: m.name.clone(),
            });
        }
    }
    let manager_id = |osm: &str, edge: &str, name: &str| -> Result<ManagerId, SynthError> {
        seen.get(name)
            .map(|&k| ManagerId::from(k))
            .ok_or_else(|| SynthError::UnknownManager {
                osm: osm.to_owned(),
                edge: edge.to_owned(),
                manager: name.to_owned(),
            })
    };

    let mut specs = Vec::new();
    for osm in &decl.osms {
        let mut b = SpecBuilder::new(osm.name.clone());
        let mut state_ids = BTreeMap::new();
        for s in &osm.states {
            if state_ids.insert(s.clone(), b.state(s.clone())).is_some() {
                return Err(SynthError::DuplicateState {
                    osm: osm.name.clone(),
                    state: s.clone(),
                });
            }
        }
        let lookup_state = |name: &str| -> Result<osm_core::StateId, SynthError> {
            state_ids
                .get(name)
                .copied()
                .ok_or_else(|| SynthError::UnknownState {
                    osm: osm.name.clone(),
                    state: name.to_owned(),
                })
        };
        b.initial(lookup_state(&osm.initial)?);
        for e in &osm.edges {
            let src = lookup_state(&e.src)?;
            let dst = lookup_state(&e.dst)?;
            let mut handle = b.edge(src, dst).named(e.name.clone()).priority(e.priority);
            for prim in &e.condition {
                handle = match prim {
                    AdlPrimitive::Allocate(m, id) => {
                        handle.allocate(manager_id(&osm.name, &e.name, m)?, ident_expr(*id))
                    }
                    AdlPrimitive::Inquire(m, id) => {
                        handle.inquire(manager_id(&osm.name, &e.name, m)?, ident_expr(*id))
                    }
                    AdlPrimitive::Release(m, id) => {
                        handle.release(manager_id(&osm.name, &e.name, m)?, ident_expr(*id))
                    }
                    AdlPrimitive::Discard(m, id) => {
                        handle.discard(manager_id(&osm.name, &e.name, m)?, ident_expr(*id))
                    }
                    AdlPrimitive::DiscardAll => handle.discard_all(),
                };
            }
            let _ = handle;
        }
        let spec = b.build().map_err(|e| SynthError::Spec(e.to_string()))?;
        specs.push((osm.name.clone(), spec));
    }

    Ok(SynthesizedMachine {
        name: decl.name.clone(),
        managers: decl
            .managers
            .iter()
            .map(|m| (m.name.clone(), m.kind))
            .collect(),
        specs,
    })
}

/// Exports a synthesized machine back to ADL text (pretty-printer). The
/// declarative model is fully recoverable: `parse(export(m))` synthesizes
/// an equivalent machine — the round-trip property the declarativeness
/// claim of the paper rests on (§6).
pub fn export(machine: &SynthesizedMachine) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out, "machine {} {{", machine.name);
    for (name, kind) in &machine.managers {
        let _ = writeln!(out, "    manager {name} : {kind};");
    }
    for (name, spec) in &machine.specs {
        let _ = writeln!(out, "    osm {name} {{");
        let states: Vec<&str> = spec.states().map(|s| spec.state_name(s)).collect();
        let _ = writeln!(out, "        states {};", states.join(", "));
        let _ = writeln!(out, "        initial {};", spec.state_name(spec.initial()));
        for edge in spec.edges() {
            let _ = write!(
                out,
                "        edge {} : {} -> {}",
                edge.name,
                spec.state_name(edge.src),
                spec.state_name(edge.dst)
            );
            if edge.priority != 0 {
                let _ = write!(out, " priority {}", edge.priority);
            }
            let _ = write!(out, " {{ ");
            for prim in &edge.condition {
                let _ = write!(out, "{} ", format_primitive(machine, prim));
            }
            let _ = writeln!(out, "}}");
        }
        let _ = writeln!(out, "    }}");
    }
    out.push_str("}\n");
    out
}

fn format_primitive(machine: &SynthesizedMachine, prim: &Primitive) -> String {
    let mname = |id: ManagerId| -> String {
        machine
            .managers
            .get(id.index())
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| format!("m{}", id.0))
    };
    let fident = |e: IdentExpr| -> String {
        match e {
            IdentExpr::Const(v) if osm_core::TokenIdent(v).is_any() => "any".to_owned(),
            IdentExpr::Const(v) => v.to_string(),
            IdentExpr::Slot(s) => format!("slot {}", s.0),
            IdentExpr::AnyHeld => "held".to_owned(),
        }
    };
    match *prim {
        Primitive::Allocate { manager, ident } => {
            format!("allocate {}[{}];", mname(manager), fident(ident))
        }
        Primitive::Inquire { manager, ident } => {
            format!("inquire {}[{}];", mname(manager), fident(ident))
        }
        Primitive::Release { manager, ident } => {
            format!("release {}[{}];", mname(manager), fident(ident))
        }
        Primitive::Discard {
            manager: Some(m),
            ident,
        } => format!("discard {}[{}];", mname(m), fident(ident)),
        Primitive::Discard { manager: None, .. } => "discard all;".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use osm_core::InertBehavior;

    const PIPE: &str = "
        machine pipe {
            manager fa : exclusive(1);
            manager fb : exclusive(1);
            osm op {
                states I, A, B;
                initial I;
                edge enter : I -> A { allocate fa[0]; }
                edge move  : A -> B { release fa[held]; allocate fb[0]; }
                edge leave : B -> I { release fb[held]; }
            }
        }
    ";

    #[test]
    fn synthesized_machine_runs() {
        let decl = parse(PIPE).unwrap();
        let synth = synthesize(&decl).unwrap();
        let mut machine: Machine<()> = Machine::new(());
        let ids = synth.install_managers(&mut machine);
        assert_eq!(ids.len(), 2);
        let spec = synth.spec("op").unwrap();
        let o0 = machine.add_osm(spec, InertBehavior);
        let o1 = machine.add_osm(spec, InertBehavior);
        machine.run(2).unwrap();
        assert_eq!(machine.osm(o0).state_name(), "B");
        assert_eq!(machine.osm(o1).state_name(), "A");
    }

    #[test]
    fn synthesized_machine_checkpoints_through_bytes() {
        // ADL machines have unit shared state and core-pool managers only,
        // so the sealed byte format must round-trip them with an empty
        // shared section.
        let decl = parse(PIPE).unwrap();
        let synth = synthesize(&decl).unwrap();
        let build = || {
            let mut machine: Machine<()> = Machine::new(());
            synth.install_managers(&mut machine);
            let spec = synth.spec("op").unwrap();
            machine.add_osm(spec, InertBehavior);
            machine.add_osm(spec, InertBehavior);
            machine
        };
        let mut machine = build();
        machine.run(2).unwrap();
        let ckpt = machine.checkpoint().unwrap();
        let bytes = machine.encode_checkpoint(&ckpt, &[]).unwrap();
        machine.run(3).unwrap();
        let reference: Vec<String> = machine
            .osms()
            .map(|o| o.state_name().to_owned())
            .collect();

        let mut fresh = build();
        let decoded = fresh
            .decode_checkpoint(&bytes, |b: &[u8]| b.is_empty().then_some(()))
            .unwrap();
        fresh.restore(&decoded).unwrap();
        assert_eq!(fresh.cycle(), 2);
        fresh.run(3).unwrap();
        let replay: Vec<String> = fresh.osms().map(|o| o.state_name().to_owned()).collect();
        assert_eq!(replay, reference);
    }

    #[test]
    fn unknown_manager_rejected() {
        let src = "
            machine m {
                manager a : exclusive(1);
                osm op {
                    states I, X;
                    initial I;
                    edge e : I -> X { allocate nosuch[0]; }
                }
            }
        ";
        let e = synthesize(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(e, SynthError::UnknownManager { .. }));
        assert!(e.to_string().contains("nosuch"));
    }

    #[test]
    fn unknown_state_rejected() {
        let src = "
            machine m {
                osm op {
                    states I;
                    initial I;
                    edge e : I -> Z { }
                }
            }
        ";
        let e = synthesize(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(e, SynthError::UnknownState { .. }));
    }

    #[test]
    fn duplicate_manager_rejected() {
        let src = "
            machine m {
                manager a : exclusive(1);
                manager a : reset;
            }
        ";
        let e = synthesize(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(e, SynthError::DuplicateManager { .. }));
    }

    #[test]
    fn export_round_trips() {
        let decl = parse(PIPE).unwrap();
        let synth = synthesize(&decl).unwrap();
        let text = export(&synth);
        let decl2 = parse(&text).unwrap();
        let synth2 = synthesize(&decl2).unwrap();
        assert_eq!(synth.name, synth2.name);
        assert_eq!(synth.managers, synth2.managers);
        let a = synth.spec("op").unwrap();
        let b = synth2.spec("op").unwrap();
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!(ea.name, eb.name);
            assert_eq!(ea.priority, eb.priority);
            assert_eq!(ea.condition, eb.condition);
        }
    }
}
