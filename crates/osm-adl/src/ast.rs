//! Abstract syntax of an ADL machine description.

use std::fmt;

/// A token-manager kind, mapping onto the reusable `osm-core` pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerKind {
    /// `exclusive(n)` — [`osm_core::ExclusivePool`] with `n` tokens.
    Exclusive(usize),
    /// `counting(n)` — [`osm_core::CountingPool`].
    Counting(u64),
    /// `counting(n, per_cycle)` — per-cycle bandwidth pool.
    PerCycle(u64),
    /// `scoreboard(n)` — [`osm_core::RegScoreboard`] over `n` registers.
    Scoreboard(usize),
    /// `reset` — [`osm_core::ResetManager`].
    Reset,
}

impl fmt::Display for ManagerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerKind::Exclusive(n) => write!(f, "exclusive({n})"),
            ManagerKind::Counting(n) => write!(f, "counting({n})"),
            ManagerKind::PerCycle(n) => write!(f, "counting({n}, per_cycle)"),
            ManagerKind::Scoreboard(n) => write!(f, "scoreboard({n})"),
            ManagerKind::Reset => write!(f, "reset"),
        }
    }
}

/// A `manager NAME : KIND;` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManagerDecl {
    /// Manager name.
    pub name: String,
    /// Its kind.
    pub kind: ManagerKind,
}

/// A token identifier expression inside `[...]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdlIdent {
    /// `[N]` — constant identifier.
    Const(u64),
    /// `[any]` — any available token.
    Any,
    /// `[held]` — any held token (release/discard).
    Held,
    /// `[slot N]` — dynamic identifier slot `N`.
    Slot(u32),
}

impl fmt::Display for AdlIdent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdlIdent::Const(v) => write!(f, "{v}"),
            AdlIdent::Any => write!(f, "any"),
            AdlIdent::Held => write!(f, "held"),
            AdlIdent::Slot(s) => write!(f, "slot {s}"),
        }
    }
}

/// One Λ primitive in an edge condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdlPrimitive {
    /// `allocate mgr[ident];`
    Allocate(String, AdlIdent),
    /// `inquire mgr[ident];`
    Inquire(String, AdlIdent),
    /// `release mgr[ident];`
    Release(String, AdlIdent),
    /// `discard mgr[ident];`
    Discard(String, AdlIdent),
    /// `discard all;`
    DiscardAll,
}

/// An `edge NAME : SRC -> DST [priority N] { prims }` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeDecl {
    /// Edge name.
    pub name: String,
    /// Source state name.
    pub src: String,
    /// Destination state name.
    pub dst: String,
    /// Static priority (default 0).
    pub priority: i32,
    /// Condition primitives.
    pub condition: Vec<AdlPrimitive>,
}

/// An `osm NAME { states ...; initial S; edges... }` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsmDecl {
    /// Class name.
    pub name: String,
    /// State names in declaration order.
    pub states: Vec<String>,
    /// Initial state name.
    pub initial: String,
    /// Edge declarations.
    pub edges: Vec<EdgeDecl>,
}

/// A complete `machine NAME { ... }` description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineDecl {
    /// Machine name.
    pub name: String,
    /// Token managers, in declaration order (this order fixes their ids).
    pub managers: Vec<ManagerDecl>,
    /// OSM classes.
    pub osms: Vec<OsmDecl>,
}

impl MachineDecl {
    /// Index of manager `name` in declaration order.
    pub fn manager_index(&self, name: &str) -> Option<usize> {
        self.managers.iter().position(|m| m.name == name)
    }
}
