//! Recursive-descent parser for the ADL.
//!
//! Grammar (EBNF-ish):
//!
//! ```text
//! machine   := "machine" IDENT "{" (manager | osm)* "}"
//! manager   := "manager" IDENT ":" kind ";"
//! kind      := "exclusive" "(" NUM ")"
//!            | "counting" "(" NUM ("," "per_cycle")? ")"
//!            | "scoreboard" "(" NUM ")"
//!            | "reset"
//! osm       := "osm" IDENT "{" "states" IDENT ("," IDENT)* ";"
//!              "initial" IDENT ";" edge* "}"
//! edge      := "edge" IDENT ":" IDENT "->" IDENT ("priority" "-"? NUM)?
//!              "{" prim* "}"
//! prim      := ("allocate"|"inquire"|"release"|"discard") target ";"
//! target    := "all" | IDENT "[" ident "]"
//! ident     := NUM | "any" | "held" | "slot" NUM
//! ```

use crate::ast::{
    AdlIdent, AdlPrimitive, EdgeDecl, MachineDecl, ManagerDecl, ManagerKind, OsmDecl,
};
use crate::lexer::{lex, LexError, Spanned, Token};
use std::error::Error;
use std::fmt;

/// A parse (or lex) error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 = end of input).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "at end of input: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: format!("unexpected character `{}`", e.ch),
        }
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).map(|s| s.line).unwrap_or(0)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {want}, found {t}"))
            }
            None => self.err(format!("expected {want}, found end of input")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.next() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected an identifier, found {t}"))
            }
            None => self.err("expected an identifier, found end of input"),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let name = self.ident()?;
        if name == kw {
            Ok(())
        } else {
            self.pos -= 1;
            self.err(format!("expected `{kw}`, found `{name}`"))
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        match self.peek() {
            Some(Token::Number(_)) => match self.next() {
                Some(Token::Number(n)) => Ok(n),
                _ => unreachable!(),
            },
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected a number, found {t}"))
            }
            None => self.err("expected a number, found end of input"),
        }
    }

    fn machine(&mut self) -> Result<MachineDecl, ParseError> {
        self.keyword("machine")?;
        let name = self.ident()?;
        self.expect(&Token::LBrace)?;
        let mut managers = Vec::new();
        let mut osms = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Ident(kw)) if kw == "manager" => managers.push(self.manager()?),
                Some(Token::Ident(kw)) if kw == "osm" => osms.push(self.osm()?),
                Some(t) => {
                    let t = t.clone();
                    return self.err(format!("expected `manager`, `osm` or `}}`, found {t}"));
                }
                None => return self.err("unterminated machine block"),
            }
        }
        Ok(MachineDecl {
            name,
            managers,
            osms,
        })
    }

    fn manager(&mut self) -> Result<ManagerDecl, ParseError> {
        self.keyword("manager")?;
        let name = self.ident()?;
        self.expect(&Token::Colon)?;
        let kind_name = self.ident()?;
        let kind = match kind_name.as_str() {
            "reset" => ManagerKind::Reset,
            "exclusive" | "counting" | "scoreboard" => {
                self.expect(&Token::LParen)?;
                let n = self.number()?;
                let mut per_cycle = false;
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    self.keyword("per_cycle")?;
                    per_cycle = true;
                }
                self.expect(&Token::RParen)?;
                match (kind_name.as_str(), per_cycle) {
                    ("exclusive", false) => ManagerKind::Exclusive(n as usize),
                    ("counting", false) => ManagerKind::Counting(n),
                    ("counting", true) => ManagerKind::PerCycle(n),
                    ("scoreboard", false) => ManagerKind::Scoreboard(n as usize),
                    _ => return self.err("`per_cycle` is only valid for `counting`"),
                }
            }
            other => return self.err(format!("unknown manager kind `{other}`")),
        };
        self.expect(&Token::Semi)?;
        Ok(ManagerDecl { name, kind })
    }

    fn osm(&mut self) -> Result<OsmDecl, ParseError> {
        self.keyword("osm")?;
        let name = self.ident()?;
        self.expect(&Token::LBrace)?;
        self.keyword("states")?;
        let mut states = vec![self.ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            states.push(self.ident()?);
        }
        self.expect(&Token::Semi)?;
        self.keyword("initial")?;
        let initial = self.ident()?;
        self.expect(&Token::Semi)?;
        let mut edges = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Ident(kw)) if kw == "edge" => edges.push(self.edge()?),
                Some(t) => {
                    let t = t.clone();
                    return self.err(format!("expected `edge` or `}}`, found {t}"));
                }
                None => return self.err("unterminated osm block"),
            }
        }
        Ok(OsmDecl {
            name,
            states,
            initial,
            edges,
        })
    }

    fn edge(&mut self) -> Result<EdgeDecl, ParseError> {
        self.keyword("edge")?;
        let name = self.ident()?;
        self.expect(&Token::Colon)?;
        let src = self.ident()?;
        self.expect(&Token::Arrow)?;
        let dst = self.ident()?;
        let mut priority = 0;
        if let Some(Token::Ident(kw)) = self.peek() {
            if kw == "priority" {
                self.pos += 1;
                let negative = matches!(self.peek(), Some(Token::Minus));
                if negative {
                    self.pos += 1;
                }
                let raw = self.number()?;
                let Ok(magnitude) = i32::try_from(raw) else {
                    return self.err(format!("priority {raw} exceeds the i32 range"));
                };
                priority = if negative { -magnitude } else { magnitude };
            }
        }
        self.expect(&Token::LBrace)?;
        let mut condition = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Ident(_)) => condition.push(self.primitive()?),
                Some(t) => {
                    let t = t.clone();
                    return self.err(format!("expected a primitive or `}}`, found {t}"));
                }
                None => return self.err("unterminated edge block"),
            }
        }
        Ok(EdgeDecl {
            name,
            src,
            dst,
            priority,
            condition,
        })
    }

    fn primitive(&mut self) -> Result<AdlPrimitive, ParseError> {
        let verb = self.ident()?;
        if verb == "discard" {
            if let Some(Token::Ident(kw)) = self.peek() {
                if kw == "all" {
                    self.pos += 1;
                    self.expect(&Token::Semi)?;
                    return Ok(AdlPrimitive::DiscardAll);
                }
            }
        }
        let manager = self.ident()?;
        self.expect(&Token::LBracket)?;
        let ident = match self.peek() {
            Some(Token::Number(_)) => AdlIdent::Const(self.number()?),
            Some(Token::Ident(kw)) => match kw.as_str() {
                "any" => {
                    self.pos += 1;
                    AdlIdent::Any
                }
                "held" => {
                    self.pos += 1;
                    AdlIdent::Held
                }
                "slot" => {
                    self.pos += 1;
                    AdlIdent::Slot(self.number()? as u32)
                }
                other => {
                    let msg = format!("expected `any`, `held`, `slot N` or a number, found `{other}`");
                    return self.err(msg);
                }
            },
            _ => return self.err("expected a token identifier"),
        };
        self.expect(&Token::RBracket)?;
        self.expect(&Token::Semi)?;
        match verb.as_str() {
            "allocate" => Ok(AdlPrimitive::Allocate(manager, ident)),
            "inquire" => Ok(AdlPrimitive::Inquire(manager, ident)),
            "release" => Ok(AdlPrimitive::Release(manager, ident)),
            "discard" => Ok(AdlPrimitive::Discard(manager, ident)),
            other => self.err(format!("unknown primitive `{other}`")),
        }
    }
}

/// Parses one `machine` description.
///
/// # Errors
/// Returns a [`ParseError`] with the offending source line.
pub fn parse(src: &str) -> Result<MachineDecl, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let m = p.machine()?;
    if p.pos != p.tokens.len() {
        return p.err("trailing input after machine description");
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "
        machine demo {
            manager fetch  : exclusive(1);
            manager decode : exclusive(1);
            manager regs   : scoreboard(32);
            manager bw     : counting(2, per_cycle);
            manager rst    : reset;

            osm op {
                states I, F, D;
                initial I;
                edge take:  I -> F { allocate fetch[0]; allocate bw[any]; discard bw[held]; }
                edge kill:  F -> I priority 10 { inquire rst[0]; discard all; }
                edge move:  F -> D { release fetch[held]; allocate decode[0]; inquire regs[slot 1]; }
                edge done:  D -> I { release decode[held]; }
            }
        }
    ";

    #[test]
    fn parses_demo_machine() {
        let m = parse(DEMO).unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.managers.len(), 5);
        assert_eq!(m.managers[2].kind, ManagerKind::Scoreboard(32));
        assert_eq!(m.managers[3].kind, ManagerKind::PerCycle(2));
        assert_eq!(m.managers[4].kind, ManagerKind::Reset);
        assert_eq!(m.osms.len(), 1);
        let osm = &m.osms[0];
        assert_eq!(osm.states, vec!["I", "F", "D"]);
        assert_eq!(osm.initial, "I");
        assert_eq!(osm.edges.len(), 4);
        assert_eq!(osm.edges[1].priority, 10);
        assert_eq!(
            osm.edges[2].condition[2],
            AdlPrimitive::Inquire("regs".into(), AdlIdent::Slot(1))
        );
        assert_eq!(osm.edges[1].condition[1], AdlPrimitive::DiscardAll);
        assert_eq!(m.manager_index("regs"), Some(2));
        assert_eq!(m.manager_index("nope"), None);
    }

    #[test]
    fn error_reports_line() {
        let src = "machine m {\n  manager x : bogus;\n}";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn missing_semicolon_reported() {
        let src = "machine m { manager x : reset }";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("`;`"));
    }

    /// Found by the model fuzzer: `export` prints `priority -1` for
    /// bail-out edges but the lexer only knew `-` as part of `->`, so an
    /// exported machine with a negative priority could never be re-parsed.
    #[test]
    fn negative_priority_round_trips() {
        let src = "
            machine m {
                manager x : exclusive(1);
                osm op {
                    states I, W;
                    initial I;
                    edge go:   I -> W { allocate x[0]; }
                    edge bail: W -> I priority -2 { release x[held]; }
                }
            }
        ";
        let m = parse(src).unwrap();
        assert_eq!(m.osms[0].edges[1].priority, -2);
    }

    /// Companion truncation guard: `priority` used to be cast with
    /// `as i32`, silently wrapping values above `i32::MAX`.
    #[test]
    fn oversized_priority_is_an_error_not_a_wrap() {
        let src = "
            machine m {
                manager x : exclusive(1);
                osm op {
                    states I, W;
                    initial I;
                    edge go: I -> W priority 4294967296 { allocate x[0]; }
                }
            }
        ";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("i32"), "{}", e.message);
    }

    #[test]
    fn trailing_input_rejected() {
        let src = "machine m { } extra";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn per_cycle_only_for_counting() {
        let src = "machine m { manager x : exclusive(1, per_cycle); }";
        assert!(parse(src).is_err());
    }
}
