//! # osm-adl — an architecture description language for OSM models
//!
//! The paper closes by proposing "an architecture description language based
//! on the OSM model" as the foundation of a retargetable simulator
//! generation framework (§7). This crate implements that step: a small
//! declarative language describing token managers and operation state
//! machines, a parser with line-accurate errors, a synthesizer producing
//! executable `osm-core` structures, and an exporter proving the model is
//! fully declarative (parse ∘ export = identity on the model).
//!
//! ```
//! use osm_adl::{parse, synthesize};
//! use osm_core::{InertBehavior, Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = "
//!     machine demo {
//!         manager stage : exclusive(1);
//!         osm op {
//!             states I, S;
//!             initial I;
//!             edge enter : I -> S { allocate stage[0]; }
//!             edge leave : S -> I { release stage[held]; }
//!         }
//!     }
//! ";
//! let synth = synthesize(&parse(source)?)?;
//! let mut machine: Machine<()> = Machine::new(());
//! synth.install_managers(&mut machine);
//! let op = machine.add_osm(synth.spec("op").expect("declared"), InertBehavior);
//! machine.run(1)?;
//! assert_eq!(machine.osm(op).state_name(), "S");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
mod lexer;
mod parser;
mod synth;

pub use ast::{AdlIdent, AdlPrimitive, EdgeDecl, MachineDecl, ManagerDecl, ManagerKind, OsmDecl};
pub use lexer::{lex, LexError, Spanned, Token};
pub use parser::{parse, ParseError};
pub use synth::{export, synthesize, SynthError, SynthesizedMachine};
