//! # osm-adl — an architecture description language for OSM models
//!
//! The paper closes by proposing "an architecture description language based
//! on the OSM model" as the foundation of a retargetable simulator
//! generation framework (§7). This crate implements that step: a small
//! declarative language describing token managers and operation state
//! machines, a parser with line-accurate errors, a synthesizer producing
//! executable `osm-core` structures, and an exporter proving the model is
//! fully declarative (parse ∘ export = identity on the model).
//!
//! ```
//! use osm_adl::{parse, synthesize};
//! use osm_core::{InertBehavior, Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = "
//!     machine demo {
//!         manager stage : exclusive(1);
//!         osm op {
//!             states I, S;
//!             initial I;
//!             edge enter : I -> S { allocate stage[0]; }
//!             edge leave : S -> I { release stage[held]; }
//!         }
//!     }
//! ";
//! let synth = synthesize(&parse(source)?)?;
//! let mut machine: Machine<()> = Machine::new(());
//! synth.install_managers(&mut machine);
//! let op = machine.add_osm(synth.spec("op").expect("declared"), InertBehavior);
//! machine.run(1)?;
//! assert_eq!(machine.osm(op).state_name(), "S");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
mod lexer;
mod parser;
mod synth;

pub use ast::{AdlIdent, AdlPrimitive, EdgeDecl, MachineDecl, ManagerDecl, ManagerKind, OsmDecl};
pub use lexer::{lex, LexError, Spanned, Token};
pub use parser::{parse, ParseError};
pub use synth::{export, synthesize, SynthError, SynthesizedMachine};

/// Why [`load`] rejected a source text: either it failed to parse, or it
/// parsed but failed semantic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The source is not syntactically valid ADL.
    Parse(ParseError),
    /// The source parsed but could not be synthesized.
    Synth(SynthError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "{e}"),
            LoadError::Synth(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ParseError> for LoadError {
    fn from(e: ParseError) -> LoadError {
        LoadError::Parse(e)
    }
}

impl From<SynthError> for LoadError {
    fn from(e: SynthError) -> LoadError {
        LoadError::Synth(e)
    }
}

/// One-call front door: parses and synthesizes a source text, with a
/// unified error. This is what embedders that treat ADL text as an opaque
/// machine description (the simulation farm's `adl` model kind, the model
/// fuzzer's corpus replay) call.
///
/// # Errors
/// Returns [`LoadError`] when the text fails to parse or synthesize.
pub fn load(source: &str) -> Result<SynthesizedMachine, LoadError> {
    Ok(synthesize(&parse(source)?)?)
}
