//! Error-path coverage for the ADL front end: lexer rejections, parser
//! rejections (malformed Λ guards, truncated input) and semantic rejections
//! (duplicate names). Each case asserts both that the input is refused and
//! that the diagnostic carries enough context (line number / offending
//! name) to fix the source.

use osm_adl::{lex, parse, synthesize, SynthError};

/// A minimal valid machine the malformed cases are derived from.
const VALID: &str = r#"
    machine demo {
        manager mf : exclusive(1);
        osm ctl {
            states I, F, D;
            initial I;
            edge fetch : I -> F { allocate mf[any]; }
            edge done : F -> I { release mf[held]; }
        }
    }
"#;

#[test]
fn the_reference_machine_is_accepted() {
    let decl = parse(VALID).expect("reference source must parse");
    synthesize(&decl).expect("reference source must synthesize");
}

// ---------------------------------------------------------------- lexer --

#[test]
fn lexer_rejects_unknown_characters_with_line_number() {
    let err = lex("machine demo {\n    manager m : @exclusive(1);\n}").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.to_string().contains('@'), "{err}");
}

#[test]
fn bare_minus_lexes_but_fails_parsing_outside_priority() {
    // `-` is a token now (negative priorities round-trip through export),
    // so the rejection moved from the lexer to the parser.
    assert!(lex("edge e : A - B").is_ok());
    assert!(parse("machine m { manager x : - ; }").is_err());
}

#[test]
fn lexer_rejects_overflowing_and_malformed_numbers() {
    // Too large for u64.
    assert!(lex("states 99999999999999999999;").is_err());
    // Alphanumeric continuation makes `0xzz` a bad hex literal.
    assert!(lex("inquire m[0xzz];").is_err());
}

// --------------------------------------------------- malformed Λ guards --

#[test]
fn parser_rejects_unknown_token_identifier_in_guard() {
    let src = VALID.replace("allocate mf[any];", "allocate mf[whatever];");
    let err = parse(&src).unwrap_err();
    assert!(
        err.message.contains("expected `any`, `held`, `slot N` or a number"),
        "{err}"
    );
    assert!(err.message.contains("whatever"), "{err}");
}

#[test]
fn parser_rejects_unknown_primitive_verb() {
    let src = VALID.replace("allocate mf[any];", "grab mf[any];");
    let err = parse(&src).unwrap_err();
    assert!(err.message.contains("unknown primitive"), "{err}");
    assert!(err.message.contains("grab"), "{err}");
}

#[test]
fn parser_rejects_guard_with_missing_identifier() {
    let src = VALID.replace("allocate mf[any];", "allocate mf[];");
    let err = parse(&src).unwrap_err();
    assert!(err.message.contains("expected a token identifier"), "{err}");
}

#[test]
fn parser_rejects_slot_guard_without_index() {
    let src = VALID.replace("allocate mf[any];", "allocate mf[slot];");
    assert!(parse(&src).is_err());
}

#[test]
fn parser_rejects_non_ident_inside_edge_block() {
    let src = VALID.replace("allocate mf[any];", "allocate mf[any]; ;");
    let err = parse(&src).unwrap_err();
    assert!(err.message.contains("expected a primitive or `}`"), "{err}");
}

#[test]
fn parser_reports_the_guards_source_line() {
    // The bad guard sits on line 7 of the template.
    let src = VALID.replace("allocate mf[any];", "allocate mf[bogus];");
    let err = parse(&src).unwrap_err();
    assert_eq!(err.line, 7, "{err}");
}

// ------------------------------------------------------- truncated input --

#[test]
fn truncations_at_every_suffix_never_panic_and_all_fail() {
    // Chop the valid source at every byte boundary: each prefix must either
    // fail cleanly or (for whitespace-only suffixes near the end) parse.
    let full = VALID.trim_end();
    for (cut, _) in full.char_indices().skip(1) {
        let prefix = &full[..cut];
        if let Ok(decl) = parse(prefix) {
            // Only a fully closed machine can parse.
            assert!(
                prefix.trim_end().ends_with('}'),
                "truncated source unexpectedly parsed at byte {cut}"
            );
            let _ = synthesize(&decl);
        }
    }
}

#[test]
fn unterminated_blocks_name_the_block_kind() {
    let machine = parse("machine demo {").unwrap_err();
    assert!(machine.message.contains("unterminated machine block"), "{machine}");

    let osm = parse("machine demo { osm ctl { states I; initial I;").unwrap_err();
    assert!(osm.message.contains("unterminated osm block"), "{osm}");

    let edge =
        parse("machine demo { osm ctl { states I; initial I; edge e : I -> I {").unwrap_err();
    assert!(edge.message.contains("unterminated edge block"), "{edge}");
}

#[test]
fn empty_input_is_rejected() {
    assert!(parse("").is_err());
    assert!(parse("   \n\t\n").is_err());
}

// -------------------------------------------------------- duplicate names --

#[test]
fn duplicate_state_names_are_rejected_at_synthesis() {
    let src = VALID.replace("states I, F, D;", "states I, F, F;");
    let decl = parse(&src).expect("duplicate states are a semantic, not syntactic, error");
    let err = synthesize(&decl).unwrap_err();
    assert_eq!(
        err,
        SynthError::DuplicateState {
            osm: "ctl".into(),
            state: "F".into()
        }
    );
    assert!(err.to_string().contains("state `F` twice"), "{err}");
}

#[test]
fn duplicate_manager_names_are_rejected_at_synthesis() {
    let src = VALID.replace(
        "manager mf : exclusive(1);",
        "manager mf : exclusive(1);\n        manager mf : counting(4);",
    );
    let decl = parse(&src).unwrap();
    let err = synthesize(&decl).unwrap_err();
    assert_eq!(err, SynthError::DuplicateManager { name: "mf".into() });
}

// ------------------------------------------------------- unified load() --

#[test]
fn load_accepts_valid_source_and_unifies_both_error_layers() {
    use osm_adl::{load, LoadError};
    let synth = load(VALID).expect("valid source loads");
    assert_eq!(synth.name, "demo");
    assert!(synth.spec("ctl").is_some());

    let parse_err = load("machine oops {").unwrap_err();
    assert!(matches!(parse_err, LoadError::Parse(_)), "{parse_err:?}");

    let synth_err = load(&VALID.replace("mf[any]", "nosuch[any]")).unwrap_err();
    assert!(matches!(synth_err, LoadError::Synth(_)), "{synth_err:?}");
    assert!(synth_err.to_string().contains("nosuch"), "{synth_err}");
}
