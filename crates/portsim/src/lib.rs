//! # portsim — a hardware-centric port/signal simulation substrate
//!
//! A from-scratch, SystemC-like discrete-event kernel: typed [`Signal`]s
//! with current/next (delta-cycle) semantics, [`Module`]s with
//! combinational `eval` and clocked `tick` phases, and a [`PortKernel`]
//! that iterates evaluation to convergence every cycle.
//!
//! In this repository it plays the role of the SystemC substrate of the
//! paper's PowerPC-750 baseline model (§5.2): the same micro-architecture
//! expressed with explicit port wiring, whose communication overhead the
//! OSM model avoids.
//!
//! ```
//! use portsim::{Module, PortKernel, Signal, SignalStore};
//!
//! struct Driver { out: Signal<u8> }
//! impl Module for Driver {
//!     fn name(&self) -> &str { "driver" }
//!     fn eval(&mut self, s: &mut SignalStore) { s.write(self.out, 5); }
//!     fn tick(&mut self, _s: &mut SignalStore) {}
//! }
//!
//! let mut k = PortKernel::new();
//! let wire = k.signals.signal("wire", 0u8);
//! k.add_module(Driver { out: wire });
//! k.step();
//! assert_eq!(k.signals.read(wire), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kernel;
mod signal;

pub use kernel::{KernelStats, Module, PortKernel};
pub use signal::{Signal, SignalStore};
