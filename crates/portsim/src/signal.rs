//! Typed signals with current/next-value (delta-cycle) semantics.

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

/// A typed handle to a signal in a [`SignalStore`].
///
/// Handles are cheap copies; the value lives in the store. Like a SystemC
/// `sc_signal`, a write becomes visible to readers only after the next delta
/// cycle, which makes module evaluation order irrelevant.
pub struct Signal<T> {
    pub(crate) index: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Signal<T> {}

impl<T> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal#{}", self.index)
    }
}

trait SlotLike: Any {
    /// Moves `next` into `current`; returns true if the value changed.
    fn settle(&mut self) -> bool;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn name(&self) -> &str;
}

struct Slot<T> {
    name: String,
    current: T,
    next: T,
}

impl<T: Copy + PartialEq + 'static> SlotLike for Slot<T> {
    fn settle(&mut self) -> bool {
        let changed = self.current != self.next;
        self.current = self.next;
        changed
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Owns every signal of a simulation.
#[derive(Default)]
pub struct SignalStore {
    slots: Vec<Box<dyn SlotLike>>,
    writes: u64,
}

impl fmt::Debug for SignalStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SignalStore")
            .field("signals", &self.slots.len())
            .field("writes", &self.writes)
            .finish()
    }
}

impl SignalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal with an initial value.
    pub fn signal<T: Copy + PartialEq + 'static>(
        &mut self,
        name: impl Into<String>,
        initial: T,
    ) -> Signal<T> {
        let index = self.slots.len();
        self.slots.push(Box::new(Slot {
            name: name.into(),
            current: initial,
            next: initial,
        }));
        Signal {
            index,
            _marker: PhantomData,
        }
    }

    /// Reads a signal's *current* value.
    ///
    /// # Panics
    /// Panics if the handle does not belong to this store.
    pub fn read<T: Copy + PartialEq + 'static>(&self, sig: Signal<T>) -> T {
        self.slots[sig.index]
            .as_any()
            .downcast_ref::<Slot<T>>()
            .expect("signal type mismatch")
            .current
    }

    /// Schedules a signal's *next* value (visible after the delta cycle).
    ///
    /// # Panics
    /// Panics if the handle does not belong to this store.
    pub fn write<T: Copy + PartialEq + 'static>(&mut self, sig: Signal<T>, value: T) {
        self.writes += 1;
        self.slots[sig.index]
            .as_any_mut()
            .downcast_mut::<Slot<T>>()
            .expect("signal type mismatch")
            .next = value;
    }

    /// Commits all pending writes; returns how many signals changed value.
    pub fn settle(&mut self) -> usize {
        self.slots.iter_mut().map(|s| s.settle() as usize).sum()
    }

    /// Number of declared signals.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no signals are declared.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total writes performed (kernel overhead statistic).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Name of the signal behind a handle.
    pub fn name<T: Copy + PartialEq + 'static>(&self, sig: Signal<T>) -> &str {
        self.slots[sig.index].name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_is_invisible_until_settle() {
        let mut store = SignalStore::new();
        let s = store.signal("s", 0u32);
        store.write(s, 7);
        assert_eq!(store.read(s), 0);
        assert_eq!(store.settle(), 1);
        assert_eq!(store.read(s), 7);
    }

    #[test]
    fn settle_reports_only_changes() {
        let mut store = SignalStore::new();
        let a = store.signal("a", 1u8);
        let _b = store.signal("b", false);
        store.write(a, 1); // same value
        assert_eq!(store.settle(), 0);
        store.write(a, 2);
        assert_eq!(store.settle(), 1);
    }

    #[test]
    fn typed_signals_coexist() {
        let mut store = SignalStore::new();
        let a = store.signal("a", 0u64);
        let b = store.signal("b", (0u32, true));
        store.write(a, 9);
        store.write(b, (3, false));
        store.settle();
        assert_eq!(store.read(a), 9);
        assert_eq!(store.read(b), (3, false));
        assert_eq!(store.len(), 2);
        assert_eq!(store.name(a), "a");
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_confusion_panics() {
        let mut store = SignalStore::new();
        let a = store.signal("a", 0u64);
        let fake: Signal<bool> = Signal {
            index: a.index,
            _marker: std::marker::PhantomData,
        };
        let _ = store.read(fake);
    }
}
