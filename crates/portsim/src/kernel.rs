//! The cycle-driven, delta-converging simulation kernel.
//!
//! Each clock cycle:
//!
//! 1. **Evaluate phase** — every module's combinational [`Module::eval`] runs
//!    against the current signal values, scheduling next values through its
//!    ports; the store settles; the phase repeats until no signal changes (a
//!    SystemC-style delta-cycle loop, capped to catch oscillation).
//! 2. **Clock phase** — every module's sequential [`Module::tick`] commits
//!    internal state for the edge.
//!
//! This is the "hardware-centric" model of computation the paper compares
//! OSM against: all inter-module communication goes through explicitly wired
//! signals, so the kernel pays for port reads/writes and convergence loops —
//! the overhead that makes such models slower than OSM models (§2, §5.2).

use crate::signal::SignalStore;
use std::fmt;

/// A hardware module: combinational evaluation plus a clocked commit.
pub trait Module: std::any::Any {
    /// The module's instance name.
    fn name(&self) -> &str;

    /// Combinational evaluation: read current signal values, write next
    /// values. May run several times per cycle (delta convergence); it must
    /// therefore be a pure function of the current signal values and the
    /// module's (not-yet-committed) sequential state.
    fn eval(&mut self, signals: &mut SignalStore);

    /// Clock edge: commit sequential state. Runs exactly once per cycle,
    /// after the evaluate phase converges.
    fn tick(&mut self, signals: &mut SignalStore);
}

/// Kernel statistics (overhead measurement for the speed comparison).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Clock cycles simulated.
    pub cycles: u64,
    /// Total delta iterations across all cycles.
    pub delta_cycles: u64,
    /// Total module `eval` invocations.
    pub evals: u64,
}

/// The port/signal simulation kernel.
pub struct PortKernel {
    /// The signal store (exposed so test benches can observe wires).
    pub signals: SignalStore,
    modules: Vec<Box<dyn Module>>,
    /// Statistics.
    pub stats: KernelStats,
    max_delta: usize,
}

impl fmt::Debug for PortKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PortKernel")
            .field("modules", &self.modules.len())
            .field("signals", &self.signals.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for PortKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl PortKernel {
    /// Creates an empty kernel (delta-cycle cap 64).
    pub fn new() -> Self {
        PortKernel {
            signals: SignalStore::new(),
            modules: Vec::new(),
            stats: KernelStats::default(),
            max_delta: 64,
        }
    }

    /// Installs a module.
    pub fn add_module<M: Module + 'static>(&mut self, module: M) -> usize {
        self.modules.push(Box::new(module));
        self.modules.len() - 1
    }

    /// Number of installed modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Borrows a module downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the index is out of range or the type does not match.
    pub fn module<M: Module + 'static>(&self, index: usize) -> &M {
        let m: &dyn std::any::Any = self.modules[index].as_ref();
        m.downcast_ref::<M>().expect("module type mismatch")
    }

    /// Runs one clock cycle.
    ///
    /// # Panics
    /// Panics if the evaluate phase fails to converge within the delta cap
    /// (combinational oscillation — a modeling bug).
    pub fn step(&mut self) {
        let mut deltas = 0;
        loop {
            for m in &mut self.modules {
                m.eval(&mut self.signals);
                self.stats.evals += 1;
            }
            deltas += 1;
            self.stats.delta_cycles += 1;
            if self.signals.settle() == 0 {
                break;
            }
            assert!(
                deltas < self.max_delta,
                "combinational loop: no convergence after {deltas} delta cycles"
            );
        }
        for m in &mut self.modules {
            m.tick(&mut self.signals);
        }
        self.signals.settle();
        self.stats.cycles += 1;
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    /// A counter driving a wire; a comparator watching it.
    struct Counter {
        out: Signal<u32>,
        state: u32,
    }
    impl Module for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn eval(&mut self, signals: &mut SignalStore) {
            signals.write(self.out, self.state);
        }
        fn tick(&mut self, _signals: &mut SignalStore) {
            self.state += 1;
        }
    }

    struct Threshold {
        input: Signal<u32>,
        fired: Signal<bool>,
        level: u32,
    }
    impl Module for Threshold {
        fn name(&self) -> &str {
            "threshold"
        }
        fn eval(&mut self, signals: &mut SignalStore) {
            let v = signals.read(self.input);
            signals.write(self.fired, v >= self.level);
        }
        fn tick(&mut self, _signals: &mut SignalStore) {}
    }

    #[test]
    fn counter_threshold_pipeline() {
        let mut k = PortKernel::new();
        let wire = k.signals.signal("count", 0u32);
        let fired = k.signals.signal("fired", false);
        k.add_module(Counter {
            out: wire,
            state: 0,
        });
        k.add_module(Threshold {
            input: wire,
            fired,
            level: 3,
        });
        k.run(3);
        assert!(!k.signals.read(fired));
        k.run(2);
        assert!(k.signals.read(fired));
        assert_eq!(k.stats.cycles, 5);
        // Each cycle needs >=2 deltas (counter write propagates, then the
        // threshold reacts) — kernel overhead the OSM model does not pay.
        assert!(k.stats.delta_cycles > k.stats.cycles);
    }

    /// Two modules negotiating via request/grant in one cycle — exercises
    /// multi-delta convergence.
    struct Requester {
        req: Signal<bool>,
        grant: Signal<bool>,
        got: u32,
    }
    impl Module for Requester {
        fn name(&self) -> &str {
            "requester"
        }
        fn eval(&mut self, signals: &mut SignalStore) {
            signals.write(self.req, true);
        }
        fn tick(&mut self, signals: &mut SignalStore) {
            if signals.read(self.grant) {
                self.got += 1;
            }
        }
    }

    struct Granter {
        req: Signal<bool>,
        grant: Signal<bool>,
    }
    impl Module for Granter {
        fn name(&self) -> &str {
            "granter"
        }
        fn eval(&mut self, signals: &mut SignalStore) {
            let r = signals.read(self.req);
            signals.write(self.grant, r);
        }
        fn tick(&mut self, _signals: &mut SignalStore) {}
    }

    #[test]
    fn handshake_converges_within_cycle() {
        let mut k = PortKernel::new();
        let req = k.signals.signal("req", false);
        let grant = k.signals.signal("grant", false);
        let r = k.add_module(Requester {
            req,
            grant,
            got: 0,
        });
        k.add_module(Granter { req, grant });
        k.step();
        assert!(k.signals.read(grant));
        let requester: &Requester = k.module(r);
        assert_eq!(requester.got, 1);
    }

    struct Oscillator {
        a: Signal<bool>,
    }
    impl Module for Oscillator {
        fn name(&self) -> &str {
            "osc"
        }
        fn eval(&mut self, signals: &mut SignalStore) {
            let v = signals.read(self.a);
            signals.write(self.a, !v);
        }
        fn tick(&mut self, _signals: &mut SignalStore) {}
    }

    #[test]
    #[should_panic(expected = "combinational loop")]
    fn oscillation_is_detected() {
        let mut k = PortKernel::new();
        let a = k.signals.signal("a", false);
        k.add_module(Oscillator { a });
        k.step();
    }
}
