//! ADL integration: the StrongARM and PPC-750 specs export to the
//! description language and come back semantically identical — the
//! declarativeness property (paper §6) on the real case-study models.

use osm_repro::osm_adl::{export, parse, synthesize, ManagerKind, SynthesizedMachine};
use osm_repro::osm_core::StateMachineSpec;
use osm_repro::ppc750;
use osm_repro::sa1100;
use std::sync::Arc;

fn specs_equivalent(a: &Arc<StateMachineSpec>, b: &Arc<StateMachineSpec>) {
    assert_eq!(a.state_count(), b.state_count());
    assert_eq!(a.edge_count(), b.edge_count());
    assert_eq!(a.initial(), b.initial());
    for (ea, eb) in a.edges().zip(b.edges()) {
        assert_eq!(ea.name, eb.name);
        assert_eq!(ea.src, eb.src);
        assert_eq!(ea.dst, eb.dst);
        assert_eq!(ea.priority, eb.priority);
        assert_eq!(ea.condition, eb.condition, "edge {}", ea.name);
    }
}

fn roundtrip(machine: SynthesizedMachine) {
    let text = export(&machine);
    let reparsed = synthesize(&parse(&text).expect("exported text parses"))
        .expect("exported text synthesizes");
    assert_eq!(machine.managers, reparsed.managers);
    assert_eq!(machine.specs.len(), reparsed.specs.len());
    for ((na, sa), (nb, sb)) in machine.specs.iter().zip(reparsed.specs.iter()) {
        assert_eq!(na, nb);
        specs_equivalent(sa, sb);
    }
}

/// Wraps a hand-built case-study spec in a `SynthesizedMachine` so it can be
/// exported (manager names/kinds mirror the models' construction).
#[test]
fn strongarm_spec_round_trips_through_the_adl() {
    // Build the spec with the ids the SA model uses (0..8 in order).
    let ids = sa1100::SaManagers {
        mf: 0u32.into(),
        md: 1u32.into(),
        me: 2u32.into(),
        mb: 3u32.into(),
        mw: 4u32.into(),
        rff: 5u32.into(),
        mult: 6u32.into(),
        reset: 7u32.into(),
    };
    let spec = sa1100::build_spec(ids);
    let machine = SynthesizedMachine {
        name: "sa1100".into(),
        managers: vec![
            ("fetch".into(), ManagerKind::Exclusive(1)),
            ("decode".into(), ManagerKind::Exclusive(1)),
            ("execute".into(), ManagerKind::Exclusive(1)),
            ("buffer".into(), ManagerKind::Exclusive(1)),
            ("writeback".into(), ManagerKind::Exclusive(1)),
            ("regfile".into(), ManagerKind::Scoreboard(64)),
            ("multiplier".into(), ManagerKind::Exclusive(1)),
            ("rst".into(), ManagerKind::Reset),
        ],
        specs: vec![("op".into(), spec)],
    };
    roundtrip(machine);
}

#[test]
fn ppc750_spec_round_trips_through_the_adl() {
    let units: [osm_repro::osm_core::ManagerId; 6] =
        [9u32.into(), 10u32.into(), 11u32.into(), 12u32.into(), 13u32.into(), 14u32.into()];
    let rs: [osm_repro::osm_core::ManagerId; 6] =
        [15u32.into(), 16u32.into(), 17u32.into(), 18u32.into(), 19u32.into(), 20u32.into()];
    let ids = ppc750::PpcManagers {
        fq: 0u32.into(),
        fbw: 1u32.into(),
        dbw: 2u32.into(),
        rbw: 3u32.into(),
        cq: 4u32.into(),
        gren: 5u32.into(),
        fren: 6u32.into(),
        rename: 7u32.into(),
        bus: 8u32.into(),
        units,
        rs,
        reset: 21u32.into(),
    };
    let spec = ppc750::build_spec(&ids);
    let mut managers: Vec<(String, ManagerKind)> = vec![
        ("fq".into(), ManagerKind::Exclusive(6)),
        ("fbw".into(), ManagerKind::PerCycle(2)),
        ("dbw".into(), ManagerKind::PerCycle(2)),
        ("rbw".into(), ManagerKind::PerCycle(2)),
        ("cq".into(), ManagerKind::Exclusive(6)),
        ("gren".into(), ManagerKind::Counting(6)),
        ("fren".into(), ManagerKind::Counting(6)),
        ("rename".into(), ManagerKind::Scoreboard(64)),
        ("bus".into(), ManagerKind::Scoreboard(64)),
    ];
    for u in ppc750::UNITS {
        managers.push((format!("unit_{}", u.name()), ManagerKind::Exclusive(1)));
    }
    for u in ppc750::UNITS {
        managers.push((format!("rs_{}", u.name()), ManagerKind::Exclusive(1)));
    }
    managers.push(("rst".into(), ManagerKind::Reset));
    let machine = SynthesizedMachine {
        name: "ppc750".into(),
        managers,
        specs: vec![("op".into(), spec)],
    };
    roundtrip(machine);
}
