//! Property-based tests of the resilience layer: arbitrary seeded fault
//! plans never panic the simulator and always terminate inside the closed
//! error taxonomy; fault streams are deterministic per seed; and
//! checkpoint → restore → re-run reproduces the original continuation
//! exactly, faults and all.

use osm_repro::osm_core::{FaultKind, FaultPlan, FaultRule, ModelError};
use osm_repro::sa1100::{SaConfig, SaOsmSim};
use osm_repro::workloads::random_program;
use proptest::prelude::*;

/// Cycle cap for every faulty run: a fault that silences fetch forever
/// leaves the machine legitimately idling, so the cap (not the watchdog)
/// bounds those runs.
const CYCLE_CAP: u64 = 50_000;
/// Above the worst-case natural stall (~60 cycles cold miss + TLB walk).
const STALL_LIMIT: u64 = 300;

const ALL_KINDS: [FaultKind; 6] = [
    FaultKind::DenyAllocate,
    FaultKind::DenyInquire,
    FaultKind::DeferRelease,
    FaultKind::DropToken,
    FaultKind::CorruptToken,
    FaultKind::Blackhole,
];

fn fault_rule() -> impl Strategy<Value = FaultRule> {
    (
        prop::sample::select(&ALL_KINDS[..]),
        0.0f64..1.0,
        prop::option::of((0u64..2_000, 1u64..2_000)),
    )
        .prop_map(|(kind, p, window)| {
            let rule = FaultRule::new(kind, p);
            match window {
                Some((start, len)) => rule.between(start, start + len),
                None => rule,
            }
        })
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), prop::collection::vec(fault_rule(), 1..4)).prop_map(|(seed, rules)| {
        rules
            .into_iter()
            .fold(FaultPlan::new(seed), |plan, r| plan.rule(r))
    })
}

/// Which manager the injector wraps: any of the five stage pools or the
/// multiplier (index into this order).
fn target_of(sim: &SaOsmSim, which: usize) -> osm_repro::osm_core::ManagerId {
    let ids = sim.ids;
    [ids.mf, ids.md, ids.me, ids.mb, ids.mw, ids.mult][which % 6]
}

/// Runs `sim` to halt or the cap and folds the outcome into a comparable,
/// closed-taxonomy summary. Panics (failing the property) on any error
/// outside the taxonomy.
fn run_summary(mut sim: SaOsmSim) -> String {
    match sim.run_to_halt(CYCLE_CAP) {
        Ok(r) => format!(
            "ok cycles={} retired={} exit={} halted={}",
            r.cycles,
            r.retired,
            r.exit_code,
            sim.machine().shared.halted
        ),
        Err(ModelError::Stalled(report)) => format!(
            "stalled kind={} for={} blocked={}",
            report.kind,
            report.stalled_for,
            report.blocked.len()
        ),
        Err(ModelError::Deadlock { cycle, osms }) => {
            format!("deadlock cycle={cycle} osms={}", osms.len())
        }
        Err(ModelError::TokenLeak { cycle, problems }) => {
            format!("leak cycle={cycle} problems={}", problems.len())
        }
        Err(other) => panic!("error outside the fault taxonomy: {other}"),
    }
}

proptest! {
    // Full-simulator cases are expensive; fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary fault plans: no panic, bounded termination, closed taxonomy.
    #[test]
    fn arbitrary_fault_plans_never_panic(
        seed in 0u64..10_000,
        plan in fault_plan(),
        which in 0usize..6,
    ) {
        let program = random_program(seed, 25).program();
        let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
        sim.set_stall_limit(Some(STALL_LIMIT));
        let target = target_of(&sim, which);
        let _handle = sim.inject_faults(target, plan);
        // Any summary is acceptable; producing one means we terminated
        // inside the taxonomy without panicking.
        let _ = run_summary(sim);
    }

    /// The same seed and plan produce bit-identical fault streams: two
    /// independent runs end in the same outcome.
    #[test]
    fn same_seed_fault_runs_are_deterministic(
        seed in 0u64..10_000,
        plan in fault_plan(),
        which in 0usize..6,
    ) {
        let program = random_program(seed, 20).program();
        let run = || {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.set_stall_limit(Some(STALL_LIMIT));
            let target = target_of(&sim, which);
            let _handle = sim.inject_faults(target, plan.clone());
            run_summary(sim)
        };
        prop_assert_eq!(run(), run());
    }

    /// checkpoint → restore → re-run is exact, including the injector's
    /// RNG stream: the replayed continuation ends exactly like the original.
    #[test]
    fn checkpoint_restore_rerun_is_deterministic(
        seed in 0u64..10_000,
        plan_seed in any::<u64>(),
        deny_p in 0.0f64..0.2,
        ckpt_at in 1u64..400,
        which in 0usize..6,
    ) {
        let program = random_program(seed, 20).program();
        let plan = FaultPlan::new(plan_seed)
            .deny_allocate(deny_p)
            .deny_inquire(deny_p / 2.0);
        let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
        sim.set_stall_limit(Some(STALL_LIMIT));
        let target = target_of(&sim, which);
        let _handle = sim.inject_faults(target, plan);
        for _ in 0..ckpt_at {
            if sim.machine().shared.halted || sim.step().is_err() {
                // Stalled/leaked before the checkpoint point: nothing to
                // compare, the case degenerates (still panic-free).
                return Ok(());
            }
        }
        let ckpt = sim.checkpoint().expect("all managers snapshot");
        let first = run_summary(sim);
        // `run_summary` consumed the simulator; rebuild and fast-forward via
        // a fresh run to the same checkpoint is NOT allowed (the plan's RNG
        // stream position matters) — so restore into a new identical sim.
        let mut replay = SaOsmSim::new(SaConfig::paper(), &program);
        replay.set_stall_limit(Some(STALL_LIMIT));
        let target = target_of(&replay, which);
        let plan2 = FaultPlan::new(plan_seed)
            .deny_allocate(deny_p)
            .deny_inquire(deny_p / 2.0);
        let _h2 = replay.inject_faults(target, plan2);
        replay.restore(&ckpt).expect("checkpoint restores");
        prop_assert_eq!(run_summary(replay), first);
    }
}
