//! Integration tests of the observability layer: golden-file exporter
//! output on a small deterministic pipeline, a property test that the
//! recorded token-event stream replays to the same `Stats` the director
//! counted live, and proof that attaching observers never changes which
//! transitions commit.
//!
//! Regenerate the golden files after an intentional exporter change with:
//! `BLESS=1 cargo test --test observability`

use osm_repro::minirisc::{AluOp, BranchCond, Instr, Reg};
use osm_repro::osm_adl::{parse as parse_adl, synthesize};
use osm_repro::osm_core::{
    self, ExclusivePool, IdentExpr, InertBehavior, Machine, SpecBuilder, TokenOutcome,
};
use osm_repro::sa1100::{SaConfig, SaOsmSim};
use osm_repro::simfarm::{AttemptSpan, FarmSchedule, JobSpan, JobTiming, WorkerTelemetry};
use osm_repro::vliw::{schedule, VliwConfig, VliwIr, VliwSim};
use osm_repro::workloads::random_program;
use proptest::prelude::*;

/// The quickstart's five-stage pipeline (paper Figs. 5/6): `osms`
/// operations competing for one occupancy token per stage.
fn pipeline_machine(osms: usize) -> Machine<()> {
    let mut machine: Machine<()> = Machine::new(());
    let stages: Vec<_> = ["IF", "ID", "EX", "BF", "WB"]
        .iter()
        .map(|name| machine.add_manager(ExclusivePool::new(*name, 1)))
        .collect();
    let mut b = SpecBuilder::new("op");
    let states: Vec<_> = ["I", "F", "D", "E", "B", "W"]
        .iter()
        .map(|n| b.state(*n))
        .collect();
    b.initial(states[0]);
    b.edge(states[0], states[1])
        .named("e0")
        .allocate(stages[0], IdentExpr::Const(0));
    for k in 1..5 {
        b.edge(states[k], states[k + 1])
            .named(format!("e{k}"))
            .release(stages[k - 1], IdentExpr::AnyHeld)
            .allocate(stages[k], IdentExpr::Const(0));
    }
    b.edge(states[5], states[0])
        .named("e5")
        .release(stages[4], IdentExpr::AnyHeld);
    let spec = b.build().expect("spec is valid");
    for _ in 0..osms {
        machine.add_osm(&spec, InertBehavior);
    }
    machine
}

/// Compares `actual` against the golden file, or rewrites the file when the
/// `BLESS` environment variable is set.
fn assert_golden(actual: &str, name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", name));
    assert_eq!(actual, golden, "{name} drifted; re-bless if intentional");
}

#[test]
fn chrome_trace_matches_golden_file() {
    let mut machine = pipeline_machine(3);
    machine.enable_event_log();
    machine.enable_stall_attribution();
    machine.run(12).expect("no deadlock");
    let json = osm_core::export::chrome_trace_for(&machine).expect("event log enabled");
    assert_golden(&json, "chrome_trace.json");
}

#[test]
fn pipeline_diagram_matches_golden_file() {
    let mut machine = pipeline_machine(3);
    machine.enable_event_log();
    machine.run(12).expect("no deadlock");
    let diagram =
        osm_core::export::pipeline_diagram_for(&machine, 0, 12).expect("event log enabled");
    assert_golden(&diagram, "pipeline_diagram.txt");
}

#[test]
fn metrics_json_matches_golden_file() {
    let mut machine = pipeline_machine(3);
    machine.enable_event_log();
    machine.enable_metrics();
    machine.enable_stall_attribution();
    machine.run(12).expect("no deadlock");
    let report = machine.metrics_report().expect("metrics enabled");
    assert_golden(&osm_core::export::metrics_json(&report), "metrics.json");
}

/// A tiny deterministic ILP kernel for the §6 VLIW model: a 4-iteration
/// accumulation loop with three independent ops per body, packed into
/// two-slot bundles. Small enough that the full event log stays a few
/// hundred events.
fn vliw_kernel_sim() -> VliwSim {
    let addi = |rd: u8, rs1: u8, imm: i32| Instr::AluImm {
        op: AluOp::Add,
        rd: Reg(rd),
        rs1: Reg(rs1),
        imm,
    };
    let mut ir = VliwIr::new();
    ir.push(addi(1, 0, 4)); // loop counter
    let top = ir.instrs.len();
    ir.push(addi(2, 0, 3));
    ir.push(addi(3, 0, 5));
    ir.push(Instr::Alu {
        op: AluOp::Add,
        rd: Reg(4),
        rs1: Reg(2),
        rs2: Reg(3),
    });
    ir.push(addi(1, 1, -1));
    ir.branch(
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg(1),
            rs2: Reg(0),
            offset: 0,
        },
        top,
    );
    ir.push(addi(10, 0, 0));
    ir.push(Instr::Syscall);
    VliwSim::new(VliwConfig::default(), &schedule(&ir, vec![]))
}

#[test]
fn vliw_chrome_trace_matches_golden_file() {
    let mut sim = vliw_kernel_sim();
    sim.machine_mut().enable_event_log();
    sim.machine_mut().enable_stall_attribution();
    sim.run_to_halt(10_000).expect("no deadlock");
    let json = osm_core::export::chrome_trace_for(sim.machine()).expect("event log enabled");
    assert_golden(&json, "vliw_chrome_trace.json");
}

#[test]
fn vliw_metrics_json_matches_golden_file() {
    let mut sim = vliw_kernel_sim();
    sim.machine_mut().enable_event_log();
    sim.machine_mut().enable_metrics();
    sim.machine_mut().enable_stall_attribution();
    sim.run_to_halt(10_000).expect("no deadlock");
    let report = sim.machine().metrics_report().expect("metrics enabled");
    assert_golden(&osm_core::export::metrics_json(&report), "vliw_metrics.json");
}

/// The MiniRISC-32 substrate runs as a plain ISS with no OSM layer, so
/// there is nothing for the token-event exporters to observe there.
/// Instead the MiniRISC golden covers the retargetable path (§7): the
/// declarative five-stage pipeline description synthesized by `osm-adl`,
/// instantiated with inert behaviors — pure structure and timing.
const MINIRISC_PIPELINE_ADL: &str = "
    machine minirisc5 {
        manager fetch     : exclusive(1);
        manager decode    : exclusive(1);
        manager execute   : exclusive(1);
        manager buffer    : exclusive(1);
        manager writeback : exclusive(1);

        osm op {
            states I, F, D, E, B, W;
            initial I;
            edge e0 : I -> F { allocate fetch[0]; }
            edge e1 : F -> D { release fetch[held]; allocate decode[0]; }
            edge e2 : D -> E { release decode[held]; allocate execute[0]; }
            edge e3 : E -> B { release execute[held]; allocate buffer[0]; }
            edge e4 : B -> W { release buffer[held]; allocate writeback[0]; }
            edge e5 : W -> I { release writeback[held]; }
        }
    }
";

fn minirisc_adl_machine(osms: usize) -> Machine<()> {
    let decl = parse_adl(MINIRISC_PIPELINE_ADL).expect("ADL parses");
    let synth = synthesize(&decl).expect("ADL synthesizes");
    let mut machine: Machine<()> = Machine::new(());
    synth.install_managers(&mut machine);
    let spec = synth.spec("op").expect("declared");
    for _ in 0..osms {
        machine.add_osm(spec, InertBehavior);
    }
    machine
}

#[test]
fn minirisc_adl_chrome_trace_matches_golden_file() {
    let mut machine = minirisc_adl_machine(3);
    machine.enable_event_log();
    machine.enable_stall_attribution();
    machine.run(14).expect("no deadlock");
    let json = osm_core::export::chrome_trace_for(&machine).expect("event log enabled");
    assert_golden(&json, "minirisc_chrome_trace.json");
}

#[test]
fn minirisc_adl_metrics_json_matches_golden_file() {
    let mut machine = minirisc_adl_machine(3);
    machine.enable_event_log();
    machine.enable_metrics();
    machine.enable_stall_attribution();
    machine.run(14).expect("no deadlock");
    let report = machine.metrics_report().expect("metrics enabled");
    assert_golden(
        &osm_core::export::metrics_json(&report),
        "minirisc_metrics.json",
    );
}

/// A hand-built farm schedule with fixed timestamps: two workers running a
/// serial-equivalent three-job sweep, with one steal and one retried
/// attempt. Exercising `trace_json` on synthetic data keeps the golden
/// deterministic — a live schedule's timestamps are wall-clock.
fn fixed_farm_schedule() -> FarmSchedule {
    let timing = |setup: u64, sim: u64, teardown: u64| JobTiming {
        setup_ns: setup,
        sim_ns: sim,
        teardown_ns: teardown,
    };
    let attempt = |n: u32, start: u64, end: u64, healthy: bool| AttemptSpan {
        attempt: n,
        start_ns: start,
        end_ns: end,
        timing: timing(1_000, end - start - 2_000, 1_000),
        healthy,
    };
    FarmSchedule {
        jobs_total: 3,
        wall_ns: 9_000_000,
        workers: vec![
            WorkerTelemetry {
                worker: 0,
                busy_ns: 7_000_000,
                idle_ns: 1_500_000,
                own_pops: 2,
                steals: 0,
                jobs_completed: 2,
            },
            WorkerTelemetry {
                worker: 1,
                busy_ns: 4_000_000,
                idle_ns: 4_500_000,
                own_pops: 0,
                steals: 1,
                jobs_completed: 1,
            },
        ],
        spans: vec![
            JobSpan {
                index: 0,
                name: "golden/job#0".to_owned(),
                worker: 0,
                stolen: false,
                started_ns: 100_000,
                finished_ns: 3_100_000,
                attempts: vec![attempt(1, 100_000, 3_100_000, true)],
                outcome: "halted".to_owned(),
                cycles: 4_096,
            },
            JobSpan {
                index: 1,
                name: "golden/job#1".to_owned(),
                worker: 0,
                stolen: false,
                started_ns: 3_200_000,
                finished_ns: 7_200_000,
                attempts: vec![
                    attempt(1, 3_200_000, 5_200_000, false),
                    attempt(2, 5_200_000, 7_200_000, true),
                ],
                outcome: "halted".to_owned(),
                cycles: 2_048,
            },
            JobSpan {
                index: 2,
                name: "golden/job#2".to_owned(),
                worker: 1,
                stolen: true,
                started_ns: 200_000,
                finished_ns: 4_200_000,
                attempts: vec![attempt(1, 200_000, 4_200_000, true)],
                outcome: "budget".to_owned(),
                cycles: 8_192,
            },
        ],
    }
}

#[test]
fn farm_schedule_trace_matches_golden_file() {
    assert_golden(&fixed_farm_schedule().trace_json(), "farm_schedule_trace.json");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The recorded token-event stream replays to the very numbers the
    /// director counted live: one Denied event per condition failure, one
    /// TransitionEvent per committed transition, one completion flag per
    /// operation retirement, and the stall tracker's global counter equals
    /// `Stats::idle_steps`.
    #[test]
    fn token_event_log_replays_to_stats(osms in 1usize..8, cycles in 1u64..48) {
        let mut machine = pipeline_machine(osms);
        machine.enable_event_log();
        machine.enable_stall_attribution();
        machine.run(cycles).expect("no deadlock");

        let stats = &machine.stats;
        let log = machine.event_log().expect("event log enabled");
        let denied = log
            .token_events()
            .filter(|e| e.outcome == TokenOutcome::Denied)
            .count() as u64;
        prop_assert_eq!(denied, stats.condition_failures);

        let transitions = log.transitions().count() as u64;
        prop_assert_eq!(transitions, stats.transitions);

        let completions = log.transitions().filter(|t| t.completed).count() as u64;
        let idle: u64 = machine.osms().filter(|o| o.is_idle()).count() as u64;
        // Every OSM idle at the end has completed exactly once more than it
        // is mid-flight; completions counted from the log must agree with
        // starts minus in-flight operations.
        let starts = log.transitions().filter(|t| t.started).count() as u64;
        prop_assert_eq!(starts - completions, osms as u64 - idle);

        let tracker = machine.stall_attribution().expect("attribution enabled");
        prop_assert_eq!(tracker.global_stall_cycles, stats.idle_steps);
    }

    /// Attaching the full observability stack must not change a single
    /// committed transition: cycle counts, statistics, architectural result,
    /// and the transition trace digest all match an unobserved run.
    #[test]
    fn observers_do_not_change_committed_transitions(seed in 0u64..200) {
        let program = random_program(seed, 160).program();
        let cfg = SaConfig::paper();

        let mut plain = SaOsmSim::new(cfg, &program);
        plain.machine_mut().enable_trace();
        let plain_result = plain.run_to_halt(30_000).expect("no deadlock");

        let mut observed = SaOsmSim::new(cfg, &program);
        observed.machine_mut().enable_trace();
        observed.enable_observability();
        let observed_result = observed.run_to_halt(30_000).expect("no deadlock");

        prop_assert_eq!(plain_result.cycles, observed_result.cycles);
        prop_assert_eq!(plain_result.exit_code, observed_result.exit_code);
        prop_assert_eq!(plain_result.squashed, observed_result.squashed);
        prop_assert_eq!(
            plain.machine().stats.transitions,
            observed.machine().stats.transitions
        );
        prop_assert_eq!(
            plain.machine().stats.condition_failures,
            observed.machine().stats.condition_failures
        );
        let plain_trace = plain.machine_mut().take_trace().expect("trace enabled");
        let observed_trace = observed.machine_mut().take_trace().expect("trace enabled");
        prop_assert_eq!(plain_trace.digest(), observed_trace.digest());
    }
}

#[test]
fn ring_and_digest_trace_modes_agree_with_full_mode() {
    use osm_repro::osm_core::{Trace, TraceMode};
    let run = |trace: Trace| {
        let mut machine = pipeline_machine(4);
        machine.enable_trace_with(trace);
        machine.run(20).expect("no deadlock");
        machine.take_trace().expect("trace enabled")
    };
    let full = run(Trace::new());
    let ring = run(Trace::with_mode(TraceMode::Ring(8)));
    let digest = run(Trace::with_mode(TraceMode::DigestOnly));
    assert_eq!(full.digest(), ring.digest());
    assert_eq!(full.digest(), digest.digest());
    assert_eq!(ring.len(), 8);
    assert_eq!(digest.len(), 0);
    assert_eq!(full.total(), ring.total());
}
