//! Integration tests of the observability layer: golden-file exporter
//! output on a small deterministic pipeline, a property test that the
//! recorded token-event stream replays to the same `Stats` the director
//! counted live, and proof that attaching observers never changes which
//! transitions commit.
//!
//! Regenerate the golden files after an intentional exporter change with:
//! `BLESS=1 cargo test --test observability`

use osm_repro::osm_core::{
    self, ExclusivePool, IdentExpr, InertBehavior, Machine, SpecBuilder, TokenOutcome,
};
use osm_repro::sa1100::{SaConfig, SaOsmSim};
use osm_repro::workloads::random_program;
use proptest::prelude::*;

/// The quickstart's five-stage pipeline (paper Figs. 5/6): `osms`
/// operations competing for one occupancy token per stage.
fn pipeline_machine(osms: usize) -> Machine<()> {
    let mut machine: Machine<()> = Machine::new(());
    let stages: Vec<_> = ["IF", "ID", "EX", "BF", "WB"]
        .iter()
        .map(|name| machine.add_manager(ExclusivePool::new(*name, 1)))
        .collect();
    let mut b = SpecBuilder::new("op");
    let states: Vec<_> = ["I", "F", "D", "E", "B", "W"]
        .iter()
        .map(|n| b.state(*n))
        .collect();
    b.initial(states[0]);
    b.edge(states[0], states[1])
        .named("e0")
        .allocate(stages[0], IdentExpr::Const(0));
    for k in 1..5 {
        b.edge(states[k], states[k + 1])
            .named(format!("e{k}"))
            .release(stages[k - 1], IdentExpr::AnyHeld)
            .allocate(stages[k], IdentExpr::Const(0));
    }
    b.edge(states[5], states[0])
        .named("e5")
        .release(stages[4], IdentExpr::AnyHeld);
    let spec = b.build().expect("spec is valid");
    for _ in 0..osms {
        machine.add_osm(&spec, InertBehavior);
    }
    machine
}

/// Compares `actual` against the golden file, or rewrites the file when the
/// `BLESS` environment variable is set.
fn assert_golden(actual: &str, name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", name));
    assert_eq!(actual, golden, "{name} drifted; re-bless if intentional");
}

#[test]
fn chrome_trace_matches_golden_file() {
    let mut machine = pipeline_machine(3);
    machine.enable_event_log();
    machine.enable_stall_attribution();
    machine.run(12).expect("no deadlock");
    let json = osm_core::export::chrome_trace_for(&machine).expect("event log enabled");
    assert_golden(&json, "chrome_trace.json");
}

#[test]
fn pipeline_diagram_matches_golden_file() {
    let mut machine = pipeline_machine(3);
    machine.enable_event_log();
    machine.run(12).expect("no deadlock");
    let diagram =
        osm_core::export::pipeline_diagram_for(&machine, 0, 12).expect("event log enabled");
    assert_golden(&diagram, "pipeline_diagram.txt");
}

#[test]
fn metrics_json_matches_golden_file() {
    let mut machine = pipeline_machine(3);
    machine.enable_event_log();
    machine.enable_metrics();
    machine.enable_stall_attribution();
    machine.run(12).expect("no deadlock");
    let report = machine.metrics_report().expect("metrics enabled");
    assert_golden(&osm_core::export::metrics_json(&report), "metrics.json");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The recorded token-event stream replays to the very numbers the
    /// director counted live: one Denied event per condition failure, one
    /// TransitionEvent per committed transition, one completion flag per
    /// operation retirement, and the stall tracker's global counter equals
    /// `Stats::idle_steps`.
    #[test]
    fn token_event_log_replays_to_stats(osms in 1usize..8, cycles in 1u64..48) {
        let mut machine = pipeline_machine(osms);
        machine.enable_event_log();
        machine.enable_stall_attribution();
        machine.run(cycles).expect("no deadlock");

        let stats = &machine.stats;
        let log = machine.event_log().expect("event log enabled");
        let denied = log
            .token_events()
            .filter(|e| e.outcome == TokenOutcome::Denied)
            .count() as u64;
        prop_assert_eq!(denied, stats.condition_failures);

        let transitions = log.transitions().count() as u64;
        prop_assert_eq!(transitions, stats.transitions);

        let completions = log.transitions().filter(|t| t.completed).count() as u64;
        let idle: u64 = machine.osms().filter(|o| o.is_idle()).count() as u64;
        // Every OSM idle at the end has completed exactly once more than it
        // is mid-flight; completions counted from the log must agree with
        // starts minus in-flight operations.
        let starts = log.transitions().filter(|t| t.started).count() as u64;
        prop_assert_eq!(starts - completions, osms as u64 - idle);

        let tracker = machine.stall_attribution().expect("attribution enabled");
        prop_assert_eq!(tracker.global_stall_cycles, stats.idle_steps);
    }

    /// Attaching the full observability stack must not change a single
    /// committed transition: cycle counts, statistics, architectural result,
    /// and the transition trace digest all match an unobserved run.
    #[test]
    fn observers_do_not_change_committed_transitions(seed in 0u64..200) {
        let program = random_program(seed, 160).program();
        let cfg = SaConfig::paper();

        let mut plain = SaOsmSim::new(cfg, &program);
        plain.machine_mut().enable_trace();
        let plain_result = plain.run_to_halt(30_000).expect("no deadlock");

        let mut observed = SaOsmSim::new(cfg, &program);
        observed.machine_mut().enable_trace();
        observed.enable_observability();
        let observed_result = observed.run_to_halt(30_000).expect("no deadlock");

        prop_assert_eq!(plain_result.cycles, observed_result.cycles);
        prop_assert_eq!(plain_result.exit_code, observed_result.exit_code);
        prop_assert_eq!(plain_result.squashed, observed_result.squashed);
        prop_assert_eq!(
            plain.machine().stats.transitions,
            observed.machine().stats.transitions
        );
        prop_assert_eq!(
            plain.machine().stats.condition_failures,
            observed.machine().stats.condition_failures
        );
        let plain_trace = plain.machine_mut().take_trace().expect("trace enabled");
        let observed_trace = observed.machine_mut().take_trace().expect("trace enabled");
        prop_assert_eq!(plain_trace.digest(), observed_trace.digest());
    }
}

#[test]
fn ring_and_digest_trace_modes_agree_with_full_mode() {
    use osm_repro::osm_core::{Trace, TraceMode};
    let run = |trace: Trace| {
        let mut machine = pipeline_machine(4);
        machine.enable_trace_with(trace);
        machine.run(20).expect("no deadlock");
        machine.take_trace().expect("trace enabled")
    };
    let full = run(Trace::new());
    let ring = run(Trace::with_mode(TraceMode::Ring(8)));
    let digest = run(Trace::with_mode(TraceMode::DigestOnly));
    assert_eq!(full.digest(), ring.digest());
    assert_eq!(full.digest(), digest.digest());
    assert_eq!(ring.len(), 8);
    assert_eq!(digest.len(), 0);
    assert_eq!(full.total(), ring.total());
}
