//! Cross-simulator integration tests: the same program must produce the same
//! architectural results on every executor in the workspace, and paired
//! simulators of the same machine must agree on timing.

use osm_repro::minirisc::{Iss, SparseMemory};
use osm_repro::ppc750::{PpcConfig, PpcOsmSim, PpcPortSim};
use osm_repro::sa1100::{RefSim, SaConfig, SaOsmSim};
use osm_repro::workloads::{kernels40, mediabench, random_program, specint_mix, Workload};

const MAX: u64 = 100_000_000;

fn check_workload(w: &Workload) {
    let program = w.program();

    let mut iss = Iss::with_program(SparseMemory::new(), &program);
    iss.run(50_000_000)
        .unwrap_or_else(|e| panic!("{}: ISS failed: {e}", w.name));

    let mut sa_osm = SaOsmSim::new(SaConfig::paper(), &program);
    let sa = sa_osm.run_to_halt(MAX).expect("no deadlock");
    let mut sa_ref = RefSim::new(SaConfig::paper(), &program);
    let sr = sa_ref.run_to_halt(MAX);

    let mut ppc_osm = PpcOsmSim::new(PpcConfig::paper(), &program);
    let po = ppc_osm.run_to_halt(MAX).expect("no deadlock");
    let mut ppc_port = PpcPortSim::new(PpcConfig::paper(), &program);
    let pp = ppc_port.run_to_halt(MAX);

    // Functional equivalence across all five executors.
    for (what, code, output) in [
        ("sa-osm", sa.exit_code, &sa.output),
        ("sa-ref", sr.exit_code, &sr.output),
        ("ppc-osm", po.exit_code, &po.output),
        ("ppc-port", pp.exit_code, &pp.output),
    ] {
        assert_eq!(code, iss.exit_code, "{}: {what} exit code", w.name);
        assert_eq!(*output, iss.output, "{}: {what} output", w.name);
    }
    assert_eq!(sa.retired, iss.retired, "{}: sa retired", w.name);
    assert_eq!(po.retired, iss.retired, "{}: ppc retired", w.name);

    // Timing agreement between paired models of the same machine.
    assert_eq!(sa.cycles, sr.cycles, "{}: SA OSM vs reference cycles", w.name);
    assert_eq!(po.cycles, pp.cycles, "{}: PPC OSM vs port cycles", w.name);
}

#[test]
fn superscalar_wins_on_ilp_rich_kernels() {
    // On the MediaBench kernels (plenty of independent work) the dual-issue
    // out-of-order PPC beats the scalar SA pipe.
    for w in mediabench() {
        let program = w.program();
        let sa = SaOsmSim::new(SaConfig::paper(), &program)
            .run_to_halt(MAX)
            .expect("no deadlock");
        let po = PpcOsmSim::new(PpcConfig::paper(), &program)
            .run_to_halt(MAX)
            .expect("no deadlock");
        assert!(
            po.cycles < sa.cycles,
            "{}: PPC ({}) should outrun SA ({})",
            w.name,
            po.cycles,
            sa.cycles
        );
    }
}

#[test]
fn mediabench_kernels_agree_across_all_simulators() {
    for w in mediabench() {
        check_workload(&w);
    }
}

#[test]
fn specint_mix_agrees_across_all_simulators() {
    check_workload(&specint_mix());
}

#[test]
fn diagnostic_kernels_agree_across_all_simulators() {
    for w in kernels40() {
        check_workload(&w);
    }
}

#[test]
fn random_programs_agree_across_all_simulators() {
    for seed in 0..12 {
        check_workload(&random_program(seed, 40));
    }
}
