//! Property-based tests (proptest) over the core invariants:
//!
//! * instruction encode/decode round-trips;
//! * assembler parses the disassembler's output back to the same instruction;
//! * random programs behave identically on the ISS, both StrongARM
//!   simulators and both PPC-750 simulators (functional equivalence), with
//!   deterministic, pairwise-equal timing;
//! * the OSM director is deterministic (trace digests repeat).

use osm_repro::minirisc::{
    assemble, decode, encode, AluOp, BranchCond, FpCmpCond, FpuOp, FReg, Instr, Iss, MemWidth,
    MulOp, Reg, SparseMemory,
};
use osm_repro::osm_core::{RestartPolicy, SchedulerMode};
use osm_repro::ppc750::{PpcConfig, PpcOsmSim, PpcPortSim};
use osm_repro::sa1100::{RefSim, SaConfig, SaOsmSim};
use osm_repro::vliw::{schedule, VliwConfig, VliwIr, VliwSim};
use osm_repro::workloads::random_program;
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg)
}

fn imm14() -> impl Strategy<Value = i32> {
    -8192i32..8192
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Halt),
        Just(Instr::Syscall),
        (prop::sample::select(&AluOp::ALL[..]), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        // No Sub-immediate: the ISA convention is a negative AddI (the
        // assembler's `subi` pseudo), so the canonical form excludes it.
        (
            prop::sample::select(&AluOp::ALL[..]).prop_filter("no subi", |op| *op != AluOp::Sub),
            reg(),
            reg(),
            imm14()
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
        (reg(), 0u32..(1 << 19)).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (prop::sample::select(&MulOp::ALL[..]), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Mul { op, rd, rs1, rs2 }),
        (
            prop::sample::select(&[MemWidth::Byte, MemWidth::Half, MemWidth::Word][..]),
            any::<bool>(),
            reg(),
            reg(),
            imm14()
        )
            .prop_map(|(width, unsigned, rd, rs1, offset)| Instr::Load {
                width,
                unsigned,
                rd,
                rs1,
                offset
            }),
        (
            prop::sample::select(&[MemWidth::Byte, MemWidth::Half, MemWidth::Word][..]),
            reg(),
            reg(),
            imm14()
        )
            .prop_map(|(width, rs2, rs1, offset)| Instr::Store {
                width,
                rs2,
                rs1,
                offset
            }),
        (
            prop::sample::select(&BranchCond::ALL[..]),
            reg(),
            reg(),
            -8192i32..8192
        )
            .prop_map(|(cond, rs1, rs2, w)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: w * 4
            }),
        (reg(), -200000i32..200000).prop_map(|(rd, w)| Instr::Jal { rd, offset: w * 4 }),
        (reg(), reg(), imm14()).prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (prop::sample::select(&FpuOp::ALL[..]), freg(), freg(), freg())
            .prop_map(|(op, fd, fs1, fs2)| Instr::Fpu { op, fd, fs1, fs2 }),
        (
            prop::sample::select(&FpCmpCond::ALL[..]),
            reg(),
            freg(),
            freg()
        )
            .prop_map(|(cond, rd, fs1, fs2)| Instr::FpCmp { cond, rd, fs1, fs2 }),
        (freg(), reg()).prop_map(|(fd, rs1)| Instr::CvtSW { fd, rs1 }),
        (reg(), freg()).prop_map(|(rd, fs1)| Instr::CvtWS { rd, fs1 }),
        (freg(), reg(), imm14()).prop_map(|(fd, rs1, offset)| Instr::FpLoad { fd, rs1, offset }),
        (freg(), reg(), imm14()).prop_map(|(fs2, rs1, offset)| Instr::FpStore {
            fs2,
            rs1,
            offset
        }),
    ]
}

/// An instruction's sub-word load variants print identically when the width
/// makes `unsigned` meaningless; normalize before comparing round-trips.
fn normalize(i: Instr) -> Instr {
    match i {
        Instr::Load {
            width: MemWidth::Word,
            rd,
            rs1,
            offset,
            ..
        } => Instr::Load {
            width: MemWidth::Word,
            unsigned: false,
            rd,
            rs1,
            offset,
        },
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trip(i in instr()) {
        let i = normalize(i);
        let word = encode(i).expect("strategy stays in range");
        prop_assert_eq!(normalize(decode(word).expect("decodes")), i);
    }

    #[test]
    fn assembler_parses_disassembly(i in instr()) {
        let i = normalize(i);
        let text = i.to_string();
        let p = assemble(&text, 0).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        prop_assert_eq!(p.words.len(), 1);
        prop_assert_eq!(normalize(decode(p.words[0]).expect("decodes")), i);
    }

    #[test]
    fn decode_is_idempotent_under_reencoding(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            if let Ok(again) = encode(i) {
                prop_assert_eq!(decode(again).expect("canonical decodes"), i);
            }
        }
    }
}

/// Named regression tests for cases proptest once shrank to (see
/// `properties.proptest-regressions`). Each pins the triaged verdict so the
/// persisted seed can never silently regress into a different failure.
mod regressions {
    use super::*;

    /// Shrunk case `AluImm { op: Sub, rd: Reg(0), rs1: Reg(0), imm: 0 }`
    /// (cc 693fbce3…): `assembler_parses_disassembly` failed because the
    /// instruction displays as `subi r0, r0, 0` and `subi` is a *pseudo* —
    /// the ISA has no Sub-immediate encoding, so the assembler lowers it to
    /// a negative `addi`. Verdict: blessed. The in-memory variant can
    /// represent a Sub-immediate but it is non-canonical; the strategy
    /// excludes it (`prop_filter("no subi", ..)`), and these tests pin the
    /// intended canonicalization.
    #[test]
    fn subi_shrink_case_still_roundtrips_through_encode_decode() {
        // The raw encoding layer was never the bug: Sub-immediate packs and
        // unpacks exactly.
        let i = Instr::AluImm {
            op: AluOp::Sub,
            rd: Reg(0),
            rs1: Reg(0),
            imm: 0,
        };
        let word = encode(i).expect("Sub-immediate has an encoding slot");
        assert_eq!(decode(word).expect("decodes"), i);
    }

    #[test]
    fn subi_display_assembles_to_canonical_negative_addi() {
        for (rd, rs1, imm) in [(0u8, 0u8, 0i32), (3, 4, 5), (1, 2, -17), (7, 7, 8191)] {
            let sub = Instr::AluImm {
                op: AluOp::Sub,
                rd: Reg(rd),
                rs1: Reg(rs1),
                imm,
            };
            let text = sub.to_string();
            assert!(text.starts_with("subi"), "display changed: {text}");
            let p = assemble(&text, 0).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(p.words.len(), 1);
            let lowered = decode(p.words[0]).expect("decodes");
            assert_eq!(
                lowered,
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg(rd),
                    rs1: Reg(rs1),
                    imm: -imm,
                },
                "`{text}` must lower to the canonical negative addi"
            );
        }
    }

    #[test]
    fn subi_lowering_is_semantically_equivalent() {
        // x - imm == x + (-imm): the lowering the assembler performs is
        // meaning-preserving, which is why blessing (not "fixing" the
        // assembler to emit a phantom SubI) was the right call.
        let program_text = "addi r1, r0, 100\nsubi r2, r1, 42\nhalt\n";
        let p = assemble(program_text, 0).expect("assembles");
        let mut iss = Iss::with_program(SparseMemory::new(), &p);
        iss.run(100).expect("runs");
        assert_eq!(iss.cpu.gpr(Reg(2)), 58);
    }

    #[test]
    fn subi_of_minimum_immediate_overflows_cleanly() {
        // The one place the pseudo genuinely cannot lower: -(-8192) = 8192
        // does not fit the 14-bit immediate, so assembly must fail with a
        // range diagnostic rather than wrap.
        assert!(assemble("subi r1, r2, -8192\n", 0).is_err());
    }
}

/// A VLIW countdown loop with `body` independent adds per iteration (the
/// same shape as the vliw crate's own `ilp_loop` fixture).
fn vliw_ilp_loop(iters: i32, body: usize) -> VliwIr {
    let addi = |rd: u8, rs1: u8, imm: i32| Instr::AluImm {
        op: AluOp::Add,
        rd: Reg(rd),
        rs1: Reg(rs1),
        imm,
    };
    let mut ir = VliwIr::new();
    ir.push(addi(1, 0, iters));
    let top = ir.instrs.len();
    for k in 0..body {
        ir.push(addi(2 + (k % 6) as u8, 0, k as i32));
    }
    ir.push(addi(1, 1, -1));
    ir.branch(
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg(1),
            rs2: Reg(0),
            offset: 0,
        },
        top,
    );
    ir.push(addi(10, 0, 0));
    ir.push(Instr::Alu {
        op: AluOp::Add,
        rd: Reg(11),
        rs1: Reg(1),
        rs2: Reg(0),
    });
    ir.push(Instr::Syscall);
    ir
}

proptest! {
    // Full-simulator cases are expensive; fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_programs_equivalent_on_every_simulator(seed in 0u64..10_000, len in 10usize..60) {
        let w = random_program(seed, len);
        let program = w.program();

        let mut iss = Iss::with_program(SparseMemory::new(), &program);
        iss.run(20_000_000).expect("ISS terminates");

        let mut sa = SaOsmSim::new(SaConfig::paper(), &program);
        let sa_r = sa.run_to_halt(50_000_000).expect("no deadlock");
        let sr_r = RefSim::new(SaConfig::paper(), &program).run_to_halt(50_000_000);
        let mut po = PpcOsmSim::new(PpcConfig::paper(), &program);
        let po_r = po.run_to_halt(50_000_000).expect("no deadlock");
        let pp_r = PpcPortSim::new(PpcConfig::paper(), &program).run_to_halt(50_000_000);

        prop_assert_eq!(sa_r.exit_code, iss.exit_code);
        prop_assert_eq!(sr_r.exit_code, iss.exit_code);
        prop_assert_eq!(po_r.exit_code, iss.exit_code);
        prop_assert_eq!(pp_r.exit_code, iss.exit_code);
        prop_assert_eq!(sa_r.retired, iss.retired);
        prop_assert_eq!(po_r.retired, iss.retired);
        prop_assert_eq!(sa_r.cycles, sr_r.cycles);
        prop_assert_eq!(po_r.cycles, pp_r.cycles);
    }

    #[test]
    fn token_conservation_holds_throughout_execution(seed in 0u64..10_000) {
        // The dynamic counterpart of the static verifier: at every cycle of
        // a random program, every committed-owned token of every auditable
        // manager sits in exactly its owner's buffer.
        let w = random_program(seed, 30);
        let program = w.program();
        let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
        let mut cycles = 0u64;
        while !sim.machine().shared.halted && cycles < 200_000 {
            sim.step().expect("no deadlock");
            cycles += 1;
            if cycles.is_multiple_of(7) {
                let problems = sim.machine().audit_tokens();
                prop_assert!(problems.is_empty(), "cycle {}: {:?}", cycles, problems);
            }
        }
        prop_assert!(sim.machine().shared.halted);
    }

    #[test]
    fn fast_scheduler_is_cycle_exact_on_random_programs(seed in 0u64..10_000, len in 10usize..50) {
        // The sensitivity-driven fast path must be observationally identical
        // to the seed scheduler: same transition trace (digest), same cycle
        // count, same retirement, same restart count — on both case-study
        // machines.
        let w = random_program(seed, len);
        let program = w.program();
        let sa = |mode: SchedulerMode| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().set_scheduler_mode(mode);
            sim.machine_mut().enable_trace();
            let r = sim.run_to_halt(50_000_000).expect("no deadlock");
            let stats = sim.machine().stats.clone();
            let digest = sim.machine_mut().take_trace().expect("trace on").digest();
            (digest, r.cycles, r.retired, r.exit_code,
             stats.transitions, stats.restarts, stats.idle_steps)
        };
        prop_assert_eq!(sa(SchedulerMode::Fast), sa(SchedulerMode::Seed));
        let ppc = |mode: SchedulerMode| {
            let mut sim = PpcOsmSim::new(PpcConfig::paper(), &program);
            sim.machine_mut().set_scheduler_mode(mode);
            sim.machine_mut().enable_trace();
            let r = sim.run_to_halt(50_000_000).expect("no deadlock");
            let stats = sim.machine().stats.clone();
            let digest = sim.machine_mut().take_trace().expect("trace on").digest();
            (digest, r.cycles, r.retired, r.exit_code,
             stats.transitions, stats.restarts, stats.idle_steps)
        };
        prop_assert_eq!(ppc(SchedulerMode::Fast), ppc(SchedulerMode::Seed));
    }

    #[test]
    fn restart_policy_is_neutral_under_age_ranking(seed in 0u64..10_000) {
        // Paper §4: with seniority (age) ranking, a transition can only free
        // resources wanted by *junior* operations that are still ahead in
        // the current scan — so the post-transition rescan never finds new
        // work and Restart ≡ NoRestart, transition for transition.
        let w = random_program(seed, 25);
        let program = w.program();
        let run = |policy: RestartPolicy, mode: SchedulerMode| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().set_restart_policy(policy);
            sim.machine_mut().set_scheduler_mode(mode);
            sim.machine_mut().enable_trace();
            sim.run_to_halt(50_000_000).expect("no deadlock");
            let restarts = sim.machine().stats.restarts;
            (sim.machine_mut().take_trace().expect("trace on").digest(), restarts)
        };
        let (d_restart, _) = run(RestartPolicy::Restart, SchedulerMode::Fast);
        let (d_norestart, n0) = run(RestartPolicy::NoRestart, SchedulerMode::Fast);
        prop_assert_eq!(d_restart, d_norestart);
        prop_assert_eq!(n0, 0);
        let (d_seed, _) = run(RestartPolicy::Restart, SchedulerMode::Seed);
        prop_assert_eq!(d_restart, d_seed);
    }

    #[test]
    fn fast_scheduler_is_cycle_exact_on_vliw(iters in 3i32..25, body in 1usize..9) {
        let ir = vliw_ilp_loop(iters, body);
        let program = schedule(&ir, vec![]);
        let run = |mode: SchedulerMode| {
            let mut sim = VliwSim::new(VliwConfig::default(), &program);
            sim.machine_mut().set_scheduler_mode(mode);
            sim.machine_mut().enable_trace();
            let r = sim.run_to_halt(1_000_000).expect("no deadlock");
            let digest = sim.machine_mut().take_trace().expect("trace on").digest();
            (digest, r)
        };
        prop_assert_eq!(run(SchedulerMode::Fast), run(SchedulerMode::Seed));
    }

    #[test]
    fn director_traces_are_deterministic(seed in 0u64..10_000) {
        let w = random_program(seed, 25);
        let program = w.program();
        let digest = |(
        )| {
            let mut sim = SaOsmSim::new(SaConfig::paper(), &program);
            sim.machine_mut().enable_trace();
            sim.run_to_halt(50_000_000).expect("no deadlock");
            sim.machine_mut().take_trace().expect("trace on").digest()
        };
        prop_assert_eq!(digest(()), digest(()));
    }
}
