//! Golden checkpoint test: checkpoint → restore → **continue with
//! observability** must replay the uninterrupted run's tail exactly.
//!
//! The reference run records a full trace from cycle 0. A second identical
//! run is checkpointed mid-flight and discarded; a third simulator restores
//! the checkpoint, only *then* enables tracing (plus the rest of the
//! observability stack), and runs to halt. Its digest must equal the digest
//! of the reference trace's tail — every transition at or after the
//! checkpoint cycle. This pins down two properties at once: restore is
//! exact, and late-attached observers see the identical event stream a
//! from-boot observer would have seen for those cycles.

use osm_repro::minirisc::Program;
use osm_repro::osm_core::{FaultPlan, SchedulerMode, Trace, TraceMode};
use osm_repro::sa1100::{SaConfig, SaOsmSim};
use osm_repro::workloads::{random_program, specint_mix};

const MAX: u64 = 200_000;

/// Digest of the events at or after `cut` — what a digest-only trace
/// attached at cycle `cut` would have accumulated.
fn tail_digest(full: &Trace, cut: u64) -> u64 {
    let mut tail = Trace::digest_only();
    for ev in full.events().filter(|ev| ev.cycle >= cut) {
        tail.push(*ev);
    }
    tail.digest()
}

fn golden_case(program: &Program, ckpt_at: u64, faults: Option<FaultPlan>, mode: SchedulerMode) {
    // Reference: uninterrupted, full trace from boot.
    let mut reference = SaOsmSim::new(SaConfig::paper(), program);
    reference.machine_mut().set_scheduler_mode(mode);
    reference
        .machine_mut()
        .enable_trace_with(Trace::with_mode(TraceMode::Full));
    let target = reference.ids.mf;
    if let Some(plan) = &faults {
        reference.inject_faults(target, plan.clone());
    }
    let ref_result = reference.run_to_halt(MAX).expect("reference run completes");
    assert!(reference.machine().shared.halted, "reference must halt");
    let ref_trace = reference
        .machine_mut()
        .take_trace()
        .expect("trace was enabled");

    // Interrupted: identical run, checkpointed mid-flight, then dropped.
    let mut interrupted = SaOsmSim::new(SaConfig::paper(), program);
    interrupted.machine_mut().set_scheduler_mode(mode);
    if let Some(plan) = &faults {
        let target = interrupted.ids.mf;
        interrupted.inject_faults(target, plan.clone());
    }
    for _ in 0..ckpt_at {
        assert!(!interrupted.machine().shared.halted, "checkpoint too late");
        interrupted.step().expect("pre-checkpoint step");
    }
    let cut = interrupted.machine().cycle();
    let ckpt = interrupted.checkpoint().expect("checkpoint");
    drop(interrupted);

    // Restored: fresh sim, restore, and only now attach observability.
    let mut restored = SaOsmSim::new(SaConfig::paper(), program);
    restored.machine_mut().set_scheduler_mode(mode);
    if let Some(plan) = &faults {
        let target = restored.ids.mf;
        restored.inject_faults(target, plan.clone());
    }
    restored.restore(&ckpt).expect("restore");
    assert_eq!(restored.machine().cycle(), cut, "restore rewinds the clock");
    restored.machine_mut().enable_trace_with(Trace::digest_only());
    restored.enable_observability();
    let rest_result = restored.run_to_halt(MAX).expect("restored run completes");
    assert!(restored.machine().shared.halted, "restored run must halt");

    // The continuation's digest is the reference tail's digest, bit for bit.
    let rest_trace = restored.machine_mut().take_trace().unwrap();
    assert_eq!(
        rest_trace.digest(),
        tail_digest(&ref_trace, cut),
        "restored-run trace must equal the uninterrupted run's tail (cut at cycle {cut})"
    );
    // And the architectural outcome is unchanged.
    assert_eq!(rest_result.exit_code, ref_result.exit_code);
    assert_eq!(
        reference.machine().cycle(),
        restored.machine().cycle(),
        "both runs halt on the same cycle"
    );
    // The late-attached metrics cover exactly the continuation.
    let metrics = restored.metrics_report().expect("observability enabled");
    assert_eq!(metrics.transitions, rest_trace.total());
}

#[test]
fn restored_specint_run_matches_uninterrupted_tail() {
    golden_case(&specint_mix().program(), 1_000, None, SchedulerMode::Fast);
}

#[test]
fn restored_run_matches_tail_under_fault_injection() {
    golden_case(
        &specint_mix().program(),
        800,
        Some(FaultPlan::new(0xC4E7).deny_allocate(0.02).deny_inquire(0.01)),
        SchedulerMode::Fast,
    );
}

#[test]
fn restored_run_matches_tail_in_seed_mode() {
    golden_case(&specint_mix().program(), 1_000, None, SchedulerMode::Seed);
}

#[test]
fn restored_random_program_runs_match_tails_at_many_cut_points() {
    for (seed, ckpt_at) in [(1u64, 50u64), (2, 500), (3, 1_500), (4, 37)] {
        golden_case(
            &random_program(seed, 120).program(),
            ckpt_at,
            None,
            SchedulerMode::Fast,
        );
    }
}
