//! Differential testing of the two director scheduling modes.
//!
//! `SchedulerMode::Fast` (sensitivity-driven skipping) must be behaviorally
//! indistinguishable from `SchedulerMode::Seed` (the literal Fig. 3 loop
//! from the paper) — same transition-trace digest, same cycle count, same
//! outcome — on every example model, **including with fault injection
//! enabled**: the injector hashes each decision from (plan seed, cycle,
//! rule, machine), so faults must land on the same transactions whichever
//! mode scheduled them.
//!
//! Runs go through `simfarm::run_job`, so this also differentially tests
//! the farm's job runner itself.

use osm_repro::osm_core::{FaultPlan, SchedulerMode};
use osm_repro::simfarm::{run_job, JobOutcome, JobResult, ModelKind, SimJob, WorkloadSpec};

const MAX: u64 = 200_000;

/// Runs `job` under both scheduler modes and returns (fast, seed).
fn both_modes(mut job: SimJob) -> (JobResult, JobResult) {
    job.scheduler = SchedulerMode::Fast;
    let fast = run_job(&job);
    job.scheduler = SchedulerMode::Seed;
    let seed = run_job(&job);
    (fast, seed)
}

/// The two results must be behaviorally identical: digest, cycles, retired
/// count, exit code and outcome.
///
/// Fault *counters* are deliberately NOT compared: a denied attempt is
/// retried once per director pass that re-evaluates the failing rule, and
/// the number of passes is exactly what the two modes differ in (Seed
/// re-evaluates every OSM each pass, Fast skips non-dirty ones). The
/// per-decision hash guarantees the same *transactions* are faulted — hence
/// identical traces — not the same number of denied retries.
fn assert_equivalent(fast: &JobResult, seed: &JobResult) {
    assert_eq!(fast.digest, seed.digest, "{}: trace digests differ", fast.name);
    assert_eq!(fast.cycles, seed.cycles, "{}: cycle counts differ", fast.name);
    assert_eq!(fast.retired, seed.retired, "{}: retired counts differ", fast.name);
    assert_eq!(fast.exit_code, seed.exit_code, "{}: exit codes differ", fast.name);
    assert_eq!(fast.outcome, seed.outcome, "{}: outcomes differ", fast.name);
    assert_eq!(
        fast.fault_stats.is_some(),
        seed.fault_stats.is_some(),
        "{}: one mode ran faults, the other did not",
        fast.name
    );
}

fn faulted(model: ModelKind, workload: WorkloadSpec, plan: FaultPlan) -> SimJob {
    let mut job = SimJob::new(model, workload, MAX);
    job.faults = Some(plan);
    job
}

#[test]
fn sa1100_fast_equals_seed_with_denied_allocations() {
    let (fast, seed) = both_modes(faulted(
        ModelKind::Sa1100,
        WorkloadSpec::Named("specint".into()),
        FaultPlan::new(0xD1FF).deny_allocate(0.02).defer_release(0.01),
    ));
    assert_eq!(fast.outcome, JobOutcome::Halted, "{:?}", fast.outcome);
    assert!(
        fast.fault_stats.as_ref().unwrap().total() > 0,
        "plan never fired — test is vacuous"
    );
    assert_equivalent(&fast, &seed);
}

#[test]
fn sa1100_fast_equals_seed_on_random_programs_with_faults() {
    for seed_val in 0..4u64 {
        let mut job = faulted(
            ModelKind::Sa1100,
            WorkloadSpec::Random { block_len: 200 },
            FaultPlan::new(seed_val ^ 0xABCD).deny_allocate(0.03),
        );
        job.seed = seed_val;
        job.name = format!("{}#{seed_val}", job.name);
        let (fast, seed) = both_modes(job);
        assert_equivalent(&fast, &seed);
    }
}

#[test]
fn ppc750_fast_equals_seed_with_denied_inquiries() {
    let (fast, seed) = both_modes(faulted(
        ModelKind::Ppc750,
        WorkloadSpec::Named("specint".into()),
        FaultPlan::new(0xBEEF).deny_inquire(0.02).deny_allocate(0.01),
    ));
    assert_eq!(fast.outcome, JobOutcome::Halted, "{:?}", fast.outcome);
    assert!(
        fast.fault_stats.as_ref().unwrap().total() > 0,
        "plan never fired — test is vacuous"
    );
    assert_equivalent(&fast, &seed);
}

#[test]
fn ppc750_fast_equals_seed_on_random_programs_with_faults() {
    for seed_val in 0..4u64 {
        let mut job = faulted(
            ModelKind::Ppc750,
            WorkloadSpec::Random { block_len: 200 },
            FaultPlan::new(seed_val ^ 0x750).deny_inquire(0.03),
        );
        job.seed = seed_val;
        job.name = format!("{}#{seed_val}", job.name);
        let (fast, seed) = both_modes(job);
        assert_equivalent(&fast, &seed);
    }
}

#[test]
fn vliw_fast_equals_seed_with_faults() {
    let (fast, seed) = both_modes(faulted(
        ModelKind::Vliw,
        WorkloadSpec::Ilp { iters: 400, body: 6 },
        FaultPlan::new(0x7117).deny_allocate(0.02),
    ));
    assert_eq!(fast.outcome, JobOutcome::Halted, "{:?}", fast.outcome);
    assert!(
        fast.fault_stats.as_ref().unwrap().total() > 0,
        "plan never fired — test is vacuous"
    );
    assert_equivalent(&fast, &seed);
}

#[test]
fn modes_agree_even_under_aggressive_blackhole_faults() {
    // A blackhole window plus token drops may well wedge or kill the run;
    // the contract is only that BOTH modes experience the identical outcome.
    for (model, workload) in [
        (ModelKind::Sa1100, WorkloadSpec::Named("specint".into())),
        (ModelKind::Ppc750, WorkloadSpec::Named("specint".into())),
        (ModelKind::Vliw, WorkloadSpec::Ilp { iters: 300, body: 4 }),
    ] {
        let job = faulted(
            model,
            workload,
            FaultPlan::new(0x0B5C).deny_allocate(0.05).blackhole(500, 900),
        );
        let (fast, seed) = both_modes(job);
        assert_equivalent(&fast, &seed);
    }
}

#[test]
fn fault_free_runs_also_agree_across_modes() {
    // Control: without faults the equivalence must hold too (guards against
    // the injector's always-dirty clock being what masks a scheduler bug).
    for (model, workload) in [
        (ModelKind::Sa1100, WorkloadSpec::Named("specint".into())),
        (ModelKind::Ppc750, WorkloadSpec::Named("specint".into())),
        (ModelKind::Vliw, WorkloadSpec::Ilp { iters: 400, body: 6 }),
    ] {
        let (fast, seed) = both_modes(SimJob::new(model, workload, MAX));
        assert_eq!(fast.outcome, JobOutcome::Halted, "{:?}", fast.outcome);
        assert_equivalent(&fast, &seed);
    }
}
