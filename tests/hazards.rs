//! Timing-behaviour integration tests: the four hazard idioms of paper §4,
//! checked through end-to-end cycle counts on the StrongARM model (and its
//! reference, which must agree — see `cross_model.rs`).

use osm_repro::minirisc::assemble;
use osm_repro::sa1100::{SaConfig, SaOsmSim, SimResult};

fn run(src: &str, cfg: SaConfig) -> SimResult {
    let p = assemble(src, 0x1000).expect("assembles");
    let mut sim = SaOsmSim::new(cfg, &p);
    sim.run_to_halt(10_000_000).expect("no deadlock")
}

fn run_paper(src: &str) -> SimResult {
    run(src, SaConfig::paper())
}

/// Structure hazard: the multiplier's occupancy token serializes multiply
/// operations — a second multiply pays the full extra occupancy that an
/// independent single-cycle op would not.
#[test]
fn structure_hazard_serializes_the_multiplier() {
    let two_muls = run_paper(
        "li r1, 3\nli r2, 5\nmul r3, r1, r2\nmul r4, r2, r1\nhalt\n",
    );
    let mul_and_add = run_paper(
        "li r1, 3\nli r2, 5\nmul r3, r1, r2\nadd r4, r2, r1\nhalt\n",
    );
    // The second multiply costs exactly `mul_extra` more cycles than the
    // single-cycle op in the same slot (it stalls on the multiplier token).
    assert_eq!(
        two_muls.cycles,
        mul_and_add.cycles + SaConfig::paper().mul_extra as u64
    );
}

/// Data hazard: a RAW chain stalls when forwarding is off, flows when on.
#[test]
fn data_hazard_forwarding_ablation() {
    let chain = "
        li r1, 1
        add r2, r1, r1
        add r3, r2, r2
        add r4, r3, r3
        add r5, r4, r4
        add r6, r5, r5
        halt
    ";
    let fwd = run_paper(chain);
    let nofwd = run(
        chain,
        SaConfig {
            forwarding: false,
            ..SaConfig::paper()
        },
    );
    // Without bypass each dependent pays the E->W distance.
    assert!(nofwd.cycles >= fwd.cycles + 5 * 2);
    assert_eq!(nofwd.exit_code, fwd.exit_code);
}

/// Variable latency: the same load pays more under a slower memory.
#[test]
fn variable_latency_scales_with_miss_penalty() {
    let loads = "
        la r1, buf
        lw r2, 0(r1)
        lw r3, 1024(r1)
        lw r4, 2048(r1)
        halt
    buf:
        .space 4096
    ";
    let fast = run_paper(loads);
    let mut slow_cfg = SaConfig::paper();
    slow_cfg.mem.dcache.miss_penalty += 30;
    let slow = run(loads, slow_cfg);
    // Three cold misses, each 30 cycles more expensive.
    assert_eq!(slow.cycles, fast.cycles + 3 * 30);
}

/// Control hazard: every taken branch squashes the wrong-path fetch.
#[test]
fn control_hazard_squashes_track_taken_branches() {
    let r = run_paper(
        "
        li r1, 25
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    ",
    );
    // 24 taken back-edges squash one op each; the halt squashes one more.
    assert_eq!(r.squashed, 25);
}

/// Not-taken branches cost nothing extra (sequential fetch was right).
#[test]
fn not_taken_branches_are_free() {
    let with_nt_branch = run_paper(
        "li r1, 1\nli r2, 2\nbeq r1, r2, skip\naddi r3, r0, 1\nskip:\nhalt\n",
    );
    let with_nop = run_paper("li r1, 1\nli r2, 2\nnop\naddi r3, r0, 1\nhalt\n");
    assert_eq!(with_nt_branch.cycles, with_nop.cycles);
    assert_eq!(with_nt_branch.squashed, 1); // only the halt's wrong-path fetch
}

/// The load-use bubble is exactly one cycle and is hidden by one filler.
#[test]
fn load_use_bubble_is_one_cycle() {
    let tight = run_paper(
        "la r1, d\nlw r2, 0(r1)\nadd r3, r2, r2\nhalt\nd:\n.word 3\n",
    );
    let filled = run_paper(
        "la r1, d\nlw r2, 0(r1)\nnop\nadd r3, r2, r2\nhalt\nd:\n.word 3\n",
    );
    // The filler replaces the bubble: same total cycles.
    assert_eq!(tight.cycles, filled.cycles);
}
