//! §6 model-property extraction on the real case-study specs: operation
//! paths, reservation tables and operand latencies derived statically from
//! the declarative models (inputs for retargetable compilers).

use osm_repro::osm_core::{
    enumerate_paths, release_step, reservation_table, verify_spec, ManagerId, SpecIssue,
};
use osm_repro::ppc750;
use osm_repro::sa1100;

#[test]
fn strongarm_reservation_table_matches_the_pipeline() {
    let ids = sa1100::SaManagers {
        mf: 0u32.into(),
        md: 1u32.into(),
        me: 2u32.into(),
        mb: 3u32.into(),
        mw: 4u32.into(),
        rff: 5u32.into(),
        mult: 6u32.into(),
        reset: 7u32.into(),
    };
    let spec = sa1100::build_spec(ids);
    let paths = enumerate_paths(&spec, 64);
    // One normal 6-step flow (I F D E B W I) plus two reset paths.
    assert_eq!(paths.len(), 3);
    let normal = paths
        .iter()
        .find(|p| p.len() == 6)
        .expect("the full pipeline path exists");

    let table = reservation_table(&spec, normal);
    // Step k holds exactly stage k's occupancy token (plus the register
    // update token from issue to retire).
    for (step, stage) in [ids.mf, ids.md, ids.me, ids.mb, ids.mw].into_iter().enumerate() {
        assert!(
            table.holds(step, stage),
            "stage {stage} not held at step {step}"
        );
    }
    assert!(!table.holds(1, ids.mf), "fetch released at decode");
    // Operand latency: the register update token releases at retire (step 6).
    assert_eq!(release_step(&spec, normal, ids.rff), Some(6));

    // Reset paths: killed in F (2 steps) or in D (3 steps).
    assert!(paths.iter().any(|p| p.len() == 2));
    assert!(paths.iter().any(|p| p.len() == 3));
}

#[test]
fn ppc750_paths_cover_both_dispatch_routes() {
    let units: [ManagerId; 6] =
        [9u32.into(), 10u32.into(), 11u32.into(), 12u32.into(), 13u32.into(), 14u32.into()];
    let rs: [ManagerId; 6] =
        [15u32.into(), 16u32.into(), 17u32.into(), 18u32.into(), 19u32.into(), 20u32.into()];
    let ids = ppc750::PpcManagers {
        fq: 0u32.into(),
        fbw: 1u32.into(),
        dbw: 2u32.into(),
        rbw: 3u32.into(),
        cq: 4u32.into(),
        gren: 5u32.into(),
        fren: 6u32.into(),
        rename: 7u32.into(),
        bus: 8u32.into(),
        units,
        rs,
        reset: 21u32.into(),
    };
    let spec = ppc750::build_spec(&ids);
    let paths = enumerate_paths(&spec, 4096);
    // Fig. 2's point: both the direct I-Q-E-C-I flow and the
    // reservation-station I-Q-R-E-C-I flow exist (enumeration is static —
    // it ignores behavior vetoes — so each appears once per unit-edge
    // combination), plus the short reset kills.
    let uses = |p: &osm_repro::osm_core::OperationPath, prefix: &str| {
        p.edges
            .iter()
            .any(|&e| spec.edge(e).name.starts_with(prefix))
    };
    let direct = paths
        .iter()
        .find(|p| p.len() == 4 && uses(p, "dispexec_"))
        .expect("a direct dispatch path exists");
    assert!(paths
        .iter()
        .any(|p| p.len() == 5 && uses(p, "disprs_") && uses(p, "issue_")));
    assert!(
        paths.iter().any(|p| p.len() == 2 && uses(p, "reset_q")),
        "fetch-queue kill path exists"
    );

    // A direct path holds the completion-queue entry from dispatch to retire.
    let table = reservation_table(&spec, direct);
    assert!(table.holds(1, ids.cq));
    assert!(table.holds(2, ids.cq));
    assert!(!table.holds(3, ids.cq), "freed at retire");
}

#[test]
fn strongarm_spec_passes_static_verification() {
    let ids = sa1100::SaManagers {
        mf: 0u32.into(),
        md: 1u32.into(),
        me: 2u32.into(),
        mb: 3u32.into(),
        mw: 4u32.into(),
        rff: 5u32.into(),
        mult: 6u32.into(),
        reset: 7u32.into(),
    };
    let spec = sa1100::build_spec(ids);
    let issues = verify_spec(&spec);
    assert!(issues.is_empty(), "unexpected findings: {issues:?}");
}

#[test]
fn ppc750_spec_verification_flags_only_the_unit_choice_abstraction() {
    // Static analysis cannot see the behavior vetoes that tie an operation
    // to one function unit, so it explores impossible paths that enter one
    // unit and leave another. Every finding must be of that shape; anything
    // else (a genuine leak, an unreachable state) fails the test.
    let units: [ManagerId; 6] =
        [9u32.into(), 10u32.into(), 11u32.into(), 12u32.into(), 13u32.into(), 14u32.into()];
    let rs: [ManagerId; 6] =
        [15u32.into(), 16u32.into(), 17u32.into(), 18u32.into(), 19u32.into(), 20u32.into()];
    let ids = ppc750::PpcManagers {
        fq: 0u32.into(),
        fbw: 1u32.into(),
        dbw: 2u32.into(),
        rbw: 3u32.into(),
        cq: 4u32.into(),
        gren: 5u32.into(),
        fren: 6u32.into(),
        rename: 7u32.into(),
        bus: 8u32.into(),
        units,
        rs,
        reset: 21u32.into(),
    };
    let spec = ppc750::build_spec(&ids);
    let unit_like = |m: ManagerId| units.contains(&m) || rs.contains(&m);
    for issue in verify_spec(&spec) {
        match issue {
            SpecIssue::ReleaseWithoutAllocate { manager, .. } if unit_like(manager) => {}
            SpecIssue::TokenLeak { manager, .. } if unit_like(manager) => {}
            other => panic!("unexpected finding: {other}"),
        }
    }
}
