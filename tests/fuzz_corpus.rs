//! Replays every committed fuzz corpus case through the full differential
//! matrix.
//!
//! Each file under `tests/fuzz_corpus/` is a self-contained case (ADL
//! source + workload knobs + fault plan) emitted by `osm_fuzz`. A case
//! lands here either as a representative sample of the generator's output
//! or as the shrunken form of a divergence that was fixed — replaying it
//! green on every run is what keeps the fix fixed.

use osm_fuzz::{check_cases, from_json_text, to_json_text};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_corpus")
}

fn load_corpus() -> Vec<osm_fuzz::FuzzCase> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/fuzz_corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    entries
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).expect("readable corpus file");
            from_json_text(&text)
                .unwrap_or_else(|e| panic!("{} is not a valid corpus case: {e}", path.display()))
        })
        .collect()
}

#[test]
fn corpus_is_non_empty_and_well_formed() {
    let cases = load_corpus();
    assert!(
        cases.len() >= 6,
        "expected the committed corpus, found {} case(s)",
        cases.len()
    );
    for case in &cases {
        // Serialization is canonical: re-encoding a parsed case must match
        // the committed bytes (sorted keys, lossless u64 spelling).
        let path = corpus_dir().join(format!("{}.json", case.name));
        let committed = std::fs::read_to_string(&path).expect("corpus file");
        assert_eq!(to_json_text(case), committed, "{} drifted", case.name);
    }
}

#[test]
fn every_corpus_case_replays_without_divergence() {
    let cases = load_corpus();
    let (verdicts, divergences) = check_cases(&cases);
    assert!(
        divergences.is_empty(),
        "corpus replay diverged:\n{}",
        divergences
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(verdicts.len(), cases.len());
    // Replay is deterministic: a second pass yields identical verdicts.
    let (again, _) = check_cases(&cases);
    assert_eq!(verdicts, again);
}
