//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this local
//! crate provides the (small) slice of the `rand 0.8` API the workspace
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges. The generator is xoshiro256++
//! seeded through splitmix64 — deterministic for a given seed, which is all
//! the workloads crate relies on (seeded random program generation).
//!
//! It is *not* a cryptographic RNG and does not match upstream `StdRng`'s
//! stream bit-for-bit; nothing in this workspace depends on that.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling interface (subset).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa: uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical uniform distribution (subset of `Standard`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled from (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-512..512i32);
            assert!((-512..512).contains(&v));
            let u = rng.gen_range(0..8u32);
            assert!(u < 8);
            let z = rng.gen_range(0..5usize);
            assert!(z < 5);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }
}
