//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this local
//! crate provides just enough of the criterion 0.5 API for the workspace's
//! `harness = false` benches to compile and run: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement is intentionally simple (wall-clock mean over a fixed
//! iteration budget, printed to stdout). When invoked by `cargo test`
//! (which passes `--test` to `harness = false` bench binaries), each
//! benchmark body runs exactly once as a smoke test, mirroring upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one(id, f, 10, test_mode);
        self
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id);
        run_one(&id, f, self.sample_size, self.test_mode);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F, samples: usize, test_mode: bool) {
    let mut b = Bencher {
        iters: if test_mode { 1 } else { samples as u64 },
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("bench {id}: smoke-tested 1 iteration");
    } else if b.iters > 0 {
        let per_iter = b.elapsed / b.iters as u32;
        println!("bench {id}: {per_iter:?}/iter over {} iters", b.iters);
    }
}

/// Handed to each benchmark body; call [`Bencher::iter`] with the hot code.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 1); // test mode: exactly one iteration
    }

    #[test]
    fn bencher_budget_respected() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 4);
    }
}
