//! Offline drop-in subset of the `proptest` property-testing crate.
//!
//! The build environment has no network access to crates.io, so this local
//! crate implements the slice of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`);
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter` combinators,
//!   integer and float range strategies, tuple strategies (arity 1–8),
//!   [`Just`], [`prop_oneof!`] unions, `prop::sample::select`,
//!   `prop::collection::vec` and `prop::option::of`;
//! * `any::<T>()` for the primitive types;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: no shrinking (a failing case is reported with
//! its seed and full `Debug` value instead of a minimized one) and cases are
//! generated from a deterministic per-test seed, so failures always
//! reproduce. `.proptest-regressions` files are ignored.

pub use strategy::Just;

/// Strategies: how values are generated.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of generated values. Object safe; combinators live on
    /// [`StrategyExt`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A boxed, type-erased strategy (what [`crate::prop_oneof!`] builds on).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Combinators over [`Strategy`] (upstream has these on `Strategy`
    /// itself; they are split out here to keep the core trait object safe).
    pub trait StrategyExt: Strategy + Sized {
        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Rejects values for which `f` returns false, retrying. `reason` is
        /// reported if the filter rejects too persistently.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F> {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy> StrategyExt for S {}

    /// See [`StrategyExt::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`StrategyExt::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates in a row", self.reason)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<V> Union<V> {
        /// Creates a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let k = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[k].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    ((self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53 uniform mantissa bits scaled into [start, end).
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `any::<T>()` — the canonical strategy for a type.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// `prop::sample` — choosing among fixed values.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one of `values` (cloned out of the slice).
    pub fn select<T: Clone>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "select of empty slice");
        Select {
            values: values.to_vec(),
        }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let k = (rng.next_u64() % self.values.len() as u64) as usize;
            self.values[k].clone()
        }
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `prop::option` — optional-value strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Yields `None` half the time and `Some` of the inner strategy's value
    /// otherwise (upstream's default weighting).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.element.new_value(rng))
            } else {
                None
            }
        }
    }
}

/// Test-case execution: configuration, RNG and the runner.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt::Debug;

    /// Per-test configuration (subset: only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate and run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case asked to be skipped (unused here, kept for API shape).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Result of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 RNG driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runs a strategy against a test body `cases` times.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// Creates a runner with a fixed default seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config, seed: 0 }
        }

        /// Creates a runner whose case stream is derived from `seed`
        /// (the `proptest!` macro hashes the test name into this).
        pub fn new_seeded(config: ProptestConfig, seed: u64) -> Self {
            TestRunner { config, seed }
        }

        /// Generates and runs every case; panics (like `#[test]` expects) on
        /// the first failure, reporting the case number, seed and input.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: Strategy,
            S::Value: Debug,
            F: Fn(S::Value) -> TestCaseResult,
        {
            for case in 0..self.config.cases {
                let mut rng = TestRng::new(self.seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
                let value = strategy.new_value(&mut rng);
                let repr = format!("{value:?}");
                match test(value) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest case {case}/{} failed: {msg}\n  seed: {:#x}\n  input: {repr}",
                        self.config.cases, self.seed
                    ),
                }
            }
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{
        any, Arbitrary, BoxedStrategy, Just, Strategy, StrategyExt, Union,
    };
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias so `prop::sample::select` / `prop::collection::vec` resolve
    /// after a glob import (mirrors upstream's `pub use crate as prop`).
    pub use crate as prop;
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test item of a [`proptest!`] invocation.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            // Stable per-test seed: failures reproduce across runs.
            let seed = {
                let name = concat!(module_path!(), "::", stringify!($name));
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut runner = $crate::test_runner::TestRunner::new_seeded($cfg, seed);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among several strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::StrategyExt::boxed($strat)),+
        ])
    };
}

/// Asserts inside a proptest body; failures return a
/// [`test_runner::TestCaseError`] rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -5i32..5) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(v in (0u32..100).prop_map(|x| x * 2).prop_filter("nonzero", |x| *x != 0)) {
            prop_assert!(v % 2 == 0);
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn oneof_selects_each_arm(v in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn select_clones_members(v in prop::sample::select(&[3u8, 5, 7][..])) {
            prop_assert!(v == 3 || v == 5 || v == 7);
        }

        #[test]
        fn float_ranges_in_bounds(x in 0.25f64..4.0, y in -1.0f32..1.0) {
            prop_assert!((0.25..4.0).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn option_of_covers_both_arms(v in prop::option::of(0u32..10)) {
            if let Some(x) = v {
                prop_assert!(x < 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = TestRng::new(42);
        let mut r2 = TestRng::new(42);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failure_reports_case_and_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(_x in 0u32..4) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
